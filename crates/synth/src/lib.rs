//! # efes-synth — seeded synthetic integration scenarios
//!
//! A deterministic generator of [`IntegrationScenario`]s at arbitrary
//! scale, together with a machine-readable *ground-truth manifest* of
//! every defect it injected. Two consumers drive the design:
//!
//! * **Scale sweeps** (`bench_scale` in `crates/bench`): the shape knobs
//!   ([`ShapeKnobs`]) scale rows, tables, attributes, correspondence
//!   fan-out, and source count independently, so per-stage scaling
//!   exponents can be fitted against one axis at a time.
//! * **Property tests**: the dirt knobs ([`DirtKnobs`]) are realised as
//!   *exact rounded counts* with recorded row indices — never Bernoulli
//!   coin flips — so a test can re-derive the defect sets from the data
//!   by independent scans and require them to match the manifest
//!   exactly.
//!
//! ## Determinism
//!
//! Everything flows from a single [`rand::StdRng`] seeded with
//! [`SynthConfig::seed`]; the generator has no ambient randomness (no
//! clocks, no hashing nondeterminism — iteration orders are all over
//! `Vec`s or `BTree` structures). The same configuration therefore
//! produces a byte-identical scenario and manifest, which is what makes
//! committed regression corpora and differential tests meaningful.
//!
//! ## What the estimator can and cannot see
//!
//! The generated *target* prescribes the strong constraints (primary
//! keys, NOT NULL payloads, a `ref` foreign key into the parent table);
//! the *sources* declare almost none of them, so the structure module's
//! conflict detector must consult the data. Two consequences worth
//! knowing when interpreting estimates against the manifest:
//!
//! * **NULLs and duplicate keys are visible.** Sources declare no NOT
//!   NULL and no keys, so the detector infers weak cardinalities,
//!   notices the target prescribes more, and simulates the violation
//!   counts from the instance — which match the manifest's counts.
//! * **Dangling references are invisible.** Child fragments *declare*
//!   their intra-source foreign key (fragment-to-fragment), and the
//!   detector trusts declared source constraints: the inferred
//!   cardinality is subsumed by the prescribed one, so the check is
//!   skipped and the injected dangling rows never surface as conflicts.
//!   They are ground-truth-only dirt — a recorded gap between actual and
//!   detected effort, available to future repair modules (and a good
//!   reason the manifest exists at all).
//!
//! Near-duplicate pairs are likewise not consumed by any current module;
//! they are recorded for the dedup workload the roadmap plans.
//!
//! ## Columnar streaming
//!
//! Fragment data is generated column-wise and loaded through
//! [`efes_relational::Database::load_columns_by_name`], which derives
//! the row-major source of truth *and* pre-seeds the typed columnar
//! cache — profiling a generated scenario never pays a
//! `Column::build` pass.

#![warn(missing_docs)]

mod config;
mod generator;
mod manifest;

pub use config::{DirtKnobs, ShapeKnobs, SynthConfig};
pub use generator::{generate, SynthScenario};
pub use manifest::{
    ColumnDirt, DuplicatePair, FkViolation, KeyViolation, PayloadKind, RenameRecord, SourceDirt,
    SynthManifest, TableDirt,
};

// Re-exported so downstream crates (bench, tests) can name the scenario
// type without depending on efes-relational directly.
pub use efes_relational::IntegrationScenario;
