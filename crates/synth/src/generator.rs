//! The generator proper: schemas, clean data, exact-count dirt
//! injection, and the correspondence wiring.

use crate::config::SynthConfig;
use crate::manifest::{
    ColumnDirt, DuplicatePair, FkViolation, KeyViolation, PayloadKind, RenameRecord, SourceDirt,
    SynthManifest, TableDirt,
};
use efes_relational::{
    Column, CorrespondenceBuilder, Database, DatabaseBuilder, DataType, IntegrationScenario, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// A generated scenario together with its ground-truth manifest.
#[derive(Debug, Clone)]
pub struct SynthScenario {
    /// The integration scenario, ready for the estimator.
    pub scenario: IntegrationScenario,
    /// The machine-readable record of every injected defect.
    pub manifest: SynthManifest,
}

/// Target table name pool; suffixed once the pool wraps.
const TABLE_NAMES: [&str; 8] = [
    "items", "orders", "events", "entries", "stocks", "labels", "assets", "notes",
];

/// Payload kinds with their canonical and synonym attribute names, in
/// cycle order.
const PAYLOADS: [(PayloadKind, &str, &str); 5] = [
    (PayloadKind::Categorical, "category", "genre"),
    (PayloadKind::Integer, "amount", "quantity"),
    (PayloadKind::Float, "rating", "score"),
    (PayloadKind::NumericText, "price", "cost"),
    (PayloadKind::DateText, "added", "created"),
];

/// Vocabulary for categorical payload columns.
const CATEGORIES: [&str; 16] = [
    "rock", "jazz", "folk", "blues", "soul", "punk", "metal", "indie", "house", "ambient", "ska",
    "funk", "gospel", "grunge", "techno", "dub",
];

fn table_name(i: usize) -> String {
    let base = TABLE_NAMES[i % TABLE_NAMES.len()];
    if i < TABLE_NAMES.len() {
        base.to_owned()
    } else {
        format!("{base}{}", i / TABLE_NAMES.len())
    }
}

fn fragment_name(table: usize, fragment: usize) -> String {
    format!("{}_p{fragment}", table_name(table))
}

/// The `(kind, canonical name, synonym name)` of payload attribute `p`.
fn payload_spec(p: usize) -> (PayloadKind, String, String) {
    let (kind, canonical, synonym) = PAYLOADS[p % PAYLOADS.len()];
    if p < PAYLOADS.len() {
        (kind, canonical.to_owned(), synonym.to_owned())
    } else {
        let n = p / PAYLOADS.len();
        (kind, format!("{canonical}{n}"), format!("{synonym}{n}"))
    }
}

fn datatype_of(kind: PayloadKind) -> DataType {
    match kind {
        PayloadKind::Integer => DataType::Integer,
        PayloadKind::Float => DataType::Float,
        PayloadKind::Categorical | PayloadKind::NumericText | PayloadKind::DateText => {
            DataType::Text
        }
    }
}

/// Exact defect count for a rate over `n` rows: `round(rate · n)`.
fn count_of(rate: f64, n: usize) -> usize {
    ((rate * n as f64).round() as usize).min(n)
}

/// `k` distinct indices from `0..n` via a partial Fisher–Yates shuffle —
/// O(n) and exactly as random as the RNG, with no rejection loops.
fn sample_distinct(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    let k = k.min(n);
    let mut idx: Vec<usize> = (0..n).collect();
    for t in 0..k {
        let j = rng.gen_range(t..n);
        idx.swap(t, j);
    }
    idx.truncate(k);
    idx
}

/// Reformat a canonical numeric-text cell (`"1234567"`) into the
/// alternate thousands-separator format (`"1,234,567"`).
fn alt_numeric(canonical: &str) -> String {
    let digits: Vec<u8> = canonical.bytes().collect();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, b) in digits.iter().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*b as char);
    }
    out
}

/// Reformat a canonical ISO date (`"2024-03-07"`) into the alternate
/// `DD/MM/YYYY` format (`"07/03/2024"`).
fn alt_date(canonical: &str) -> String {
    let mut parts = canonical.splitn(3, '-');
    let (y, m, d) = (
        parts.next().unwrap_or(""),
        parts.next().unwrap_or(""),
        parts.next().unwrap_or(""),
    );
    format!("{d}/{m}/{y}")
}

/// One clean payload cell.
fn clean_cell(rng: &mut StdRng, kind: PayloadKind) -> Value {
    match kind {
        PayloadKind::Categorical => {
            Value::Text(CATEGORIES[rng.gen_range(0..CATEGORIES.len())].to_owned())
        }
        PayloadKind::Integer => Value::Int(rng.gen_range(0..100_000i64)),
        PayloadKind::Float => Value::Float(rng.gen_range(0..1_000_000i64) as f64 / 100.0),
        PayloadKind::NumericText => Value::Text(rng.gen_range(1_000..10_000_000i64).to_string()),
        PayloadKind::DateText => {
            let y = rng.gen_range(1990..2025i64);
            let m = rng.gen_range(1..13i64);
            let d = rng.gen_range(1..29i64);
            Value::Text(format!("{y:04}-{m:02}-{d:02}"))
        }
    }
}

/// Rows of fragment `j` when `rows` are split across `fanout` fragments.
fn fragment_rows(rows: usize, fanout: usize, j: usize) -> usize {
    rows / fanout + usize::from(j < rows % fanout)
}

/// Generate a scenario from a configuration. The configuration is
/// [normalized](SynthConfig::normalized) first, the RNG is seeded from
/// `config.seed`, and everything downstream is deterministic: the same
/// configuration always yields a byte-identical scenario and manifest.
pub fn generate(config: &SynthConfig) -> SynthScenario {
    let cfg = config.normalized();
    let shape = cfg.shape;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let target = target_database(&cfg);
    let mut manifest = SynthManifest {
        seed: cfg.seed,
        sources: Vec::new(),
        renames: Vec::new(),
    };
    let mut sources: Vec<Database> = Vec::new();
    for s in 0..shape.sources {
        let built = generate_source(s, &cfg, &mut rng);
        manifest.sources.push(built.dirt);
        manifest.renames.extend(built.renames);
        sources.push(built.db);
    }

    // Correspondences: every fragment feeds its target table; attributes
    // map by position (id → id, payload p → payload p, ref → ref), with
    // names resolved against the possibly-renamed source schema.
    let mut cb = CorrespondenceBuilder::multi(sources.iter().collect(), &target);
    for (s, db) in sources.iter().enumerate() {
        for i in 0..shape.tables {
            let tt = table_name(i);
            for j in 0..shape.fanout {
                let st = fragment_name(i, j);
                let stid = db.schema.table_id(&st).expect("fragment exists");
                cb = cb
                    .table_from(s, &st, &tt)
                    .and_then(|b| b.attr_from(s, &st, "id", &tt, "id"))
                    .expect("id correspondence resolves");
                for p in 0..shape.payload_attrs {
                    let (_, canonical, _) = payload_spec(p);
                    // Attribute p + 1 in declaration order (after `id`).
                    let source_attr =
                        db.schema.table(stid).attributes[p + 1].name.clone();
                    cb = cb
                        .attr_from(s, &st, &source_attr, &tt, &canonical)
                        .expect("payload correspondence resolves");
                }
                if i > 0 {
                    cb = cb
                        .attr_from(s, &st, "ref", &tt, "ref")
                        .expect("ref correspondence resolves");
                }
            }
        }
    }
    let correspondences = cb.finish();

    let name = format!(
        "synth-seed{}-t{}x{}-r{}-f{}-s{}",
        cfg.seed, shape.tables, shape.payload_attrs, shape.rows, shape.fanout, shape.sources
    );
    let scenario = IntegrationScenario::multi_source(name, sources, target, correspondences)
        .expect("generated correspondences are well-formed");
    SynthScenario { scenario, manifest }
}

/// The target schema: `id` primary keys, NOT NULL payloads, and a `ref`
/// foreign key from every non-parent table into the parent. These
/// prescribed constraints are what make the injected dirt *visible* to
/// the structure detector (the sources deliberately declare none of
/// them).
fn target_database(cfg: &SynthConfig) -> Database {
    let shape = cfg.shape;
    let parent = table_name(0);
    let mut b = DatabaseBuilder::new("synth_target");
    for i in 0..shape.tables {
        let parent = parent.clone();
        b = b.table(&table_name(i), |mut t| {
            t = t.attr("id", DataType::Integer).primary_key(&["id"]);
            for p in 0..shape.payload_attrs {
                let (kind, canonical, _) = payload_spec(p);
                t = t.attr(&canonical, datatype_of(kind)).not_null(&canonical);
            }
            if i > 0 {
                t = t
                    .attr("ref", DataType::Integer)
                    .foreign_key(&["ref"], &parent, &["id"]);
            }
            t
        });
    }
    b.build().expect("target schema is well-formed")
}

struct BuiltSource {
    db: Database,
    dirt: SourceDirt,
    renames: Vec<RenameRecord>,
}

fn generate_source(s: usize, cfg: &SynthConfig, rng: &mut StdRng) -> BuiltSource {
    let shape = cfg.shape;
    let dirt = cfg.dirt;
    let db_name = format!("synth_src{s}");

    // 1. Decide synonym renames up front (schema construction consumes
    //    them in declaration order).
    let mut renames: Vec<RenameRecord> = Vec::new();
    let mut attr_names: Vec<Vec<Vec<String>>> = Vec::new(); // [table][fragment][payload]
    for i in 0..shape.tables {
        let mut per_fragment = Vec::new();
        for j in 0..shape.fanout {
            let mut names = Vec::new();
            for p in 0..shape.payload_attrs {
                let (_, canonical, synonym) = payload_spec(p);
                if rng.gen_range(0.0..1.0) < dirt.synonym_rename_rate {
                    renames.push(RenameRecord {
                        source: s,
                        table: fragment_name(i, j),
                        canonical,
                        renamed: synonym.clone(),
                    });
                    names.push(synonym);
                } else {
                    names.push(canonical);
                }
            }
            per_fragment.push(names);
        }
        attr_names.push(per_fragment);
    }

    // 2. Source schema: fragments declare *only* the intra-source FK
    //    (child fragment j → parent fragment j). No PK / UNIQUE / NOT
    //    NULL — the conflict detector infers weak cardinalities and must
    //    consult the data wherever the target prescribes more.
    let mut b = DatabaseBuilder::new(&db_name);
    for (i, per_fragment) in attr_names.iter().enumerate() {
        for (j, fragment_attrs) in per_fragment.iter().enumerate() {
            let names = fragment_attrs.clone();
            let parent = fragment_name(0, j);
            b = b.table(&fragment_name(i, j), |mut t| {
                t = t.attr("id", DataType::Integer);
                for (p, name) in names.iter().enumerate() {
                    let (kind, _, _) = payload_spec(p);
                    t = t.attr(name, datatype_of(kind));
                }
                if i > 0 {
                    t = t
                        .attr("ref", DataType::Integer)
                        .foreign_key(&["ref"], &parent, &["id"]);
                }
                t
            });
        }
    }
    let mut db = b.build().expect("source schema is well-formed");

    // 3. Per-fragment data. Parent fragments (table 0) are generated
    //    first so child refs can sample from the parent's *final* id
    //    column (key-violation injection destroys some original ids).
    let mut parent_ids: Vec<Vec<i64>> = Vec::new();
    let mut dangling_next: i64 = -1; // negative ⇒ never a real id
    let mut tables_dirt: Vec<TableDirt> = Vec::new();
    for (i, per_fragment) in attr_names.iter().enumerate() {
        for (j, fragment_attrs) in per_fragment.iter().enumerate() {
            let n = fragment_rows(shape.rows, shape.fanout, j);
            // Disjoint id ranges per fragment: n originals + up to n
            // duplicate keys fit in a stride of 2n (+1 for n = 0).
            let offset = ((i * shape.fanout + j) * (2 * shape.rows + 1)) as i64;
            let fragment = generate_fragment(FragmentSpec {
                rng,
                cfg,
                name: fragment_name(i, j),
                target_table: table_name(i),
                attr_names: fragment_attrs,
                n,
                offset,
                parent_ids: if i > 0 { Some(&parent_ids[j]) } else { None },
                dangling_next: &mut dangling_next,
            });
            if i == 0 {
                let ids = fragment
                    .columns[0]
                    .iter()
                    .map(|v| v.as_int().expect("id column holds integers"))
                    .collect();
                parent_ids.push(ids);
            }
            db.load_columns_by_name(
                &fragment.dirt.table.clone(),
                fragment
                    .columns
                    .into_iter()
                    .map(Column::from_cells)
                    .collect(),
            )
            .expect("generated columns match the declared schema");
            tables_dirt.push(fragment.dirt);
        }
    }

    BuiltSource {
        db,
        dirt: SourceDirt {
            source: db_name,
            tables: tables_dirt,
        },
        renames,
    }
}

struct FragmentSpec<'a> {
    rng: &'a mut StdRng,
    cfg: &'a SynthConfig,
    name: String,
    target_table: String,
    attr_names: &'a [String],
    n: usize,
    offset: i64,
    parent_ids: Option<&'a [i64]>,
    dangling_next: &'a mut i64,
}

struct Fragment {
    /// `id`, payloads…, and (for child fragments) `ref` — cell vectors
    /// in declaration order, ready for [`Column::from_cells`].
    columns: Vec<Vec<Value>>,
    dirt: TableDirt,
}

/// Generate one fragment: clean columns first, then dirt injected in a
/// fixed order whose defect sets are pairwise disjoint per column, so
/// the manifest counts are exact under any knob combination:
///
/// 1. per payload column, alternate formats then NULLs (one disjoint
///    index sample covers both);
/// 2. duplicate keys (victims and donors pairwise distinct);
/// 3. dangling references (child fragments only);
/// 4. appended near-duplicate rows, with incremental bookkeeping for
///    every defect the copied cells carry along.
fn generate_fragment(spec: FragmentSpec<'_>) -> Fragment {
    let FragmentSpec {
        rng,
        cfg,
        name,
        target_table,
        attr_names,
        n,
        offset,
        parent_ids,
        dangling_next,
    } = spec;
    let dirt = cfg.dirt;
    let payloads = cfg.shape.payload_attrs;

    // Clean columns, generated column-major.
    let mut id_col: Vec<Value> = (0..n).map(|r| Value::Int(offset + r as i64)).collect();
    let mut payload_cols: Vec<Vec<Value>> = (0..payloads)
        .map(|p| {
            let (kind, _, _) = payload_spec(p);
            (0..n).map(|_| clean_cell(rng, kind)).collect()
        })
        .collect();
    let mut ref_col: Option<Vec<Value>> = parent_ids.map(|ids| {
        (0..n)
            .map(|_| {
                if ids.is_empty() {
                    Value::Null
                } else {
                    Value::Int(ids[rng.gen_range(0..ids.len())])
                }
            })
            .collect()
    });

    // 1. Format heterogeneity + NULLs, one disjoint sample per column.
    let mut columns_dirt: Vec<ColumnDirt> = Vec::new();
    for (p, col) in payload_cols.iter_mut().enumerate() {
        let (kind, canonical, _) = payload_spec(p);
        let fmt_rate = match kind {
            PayloadKind::NumericText => dirt.numeric_format_rate,
            PayloadKind::DateText => dirt.date_format_rate,
            _ => 0.0,
        };
        let k_fmt = count_of(fmt_rate, n);
        let k_null = count_of(dirt.null_rate, n).min(n - k_fmt);
        let picked = sample_distinct(rng, n, k_fmt + k_null);
        let mut alt_format: Vec<usize> = picked[..k_fmt].to_vec();
        let mut nulls: Vec<usize> = picked[k_fmt..].to_vec();
        alt_format.sort_unstable();
        nulls.sort_unstable();
        for &r in &alt_format {
            let canonical_text = col[r].as_text().expect("formatted cells are text");
            col[r] = Value::Text(match kind {
                PayloadKind::NumericText => alt_numeric(canonical_text),
                PayloadKind::DateText => alt_date(canonical_text),
                _ => unreachable!("only text kinds get alternate formats"),
            });
        }
        for &r in &nulls {
            col[r] = Value::Null;
        }
        columns_dirt.push(ColumnDirt {
            attribute: attr_names[p].clone(),
            canonical,
            kind,
            nulls,
            alt_format,
        });
    }

    // 2. Duplicate keys: victims take donors' ids.
    let k_key = count_of(dirt.key_violation_rate, n).min(n / 2);
    let picked = sample_distinct(rng, n, 2 * k_key);
    let mut key_violations: Vec<KeyViolation> = (0..k_key)
        .map(|t| {
            let (victim_row, donor_row) = (picked[t], picked[k_key + t]);
            let value = id_col[donor_row].as_int().expect("ids are integers");
            id_col[victim_row] = Value::Int(value);
            KeyViolation {
                victim_row,
                donor_row,
                value,
            }
        })
        .collect();
    key_violations.sort_unstable_by_key(|v| v.victim_row);

    // 3. Dangling references (child fragments only).
    let mut fk_violations: Vec<FkViolation> = Vec::new();
    if let Some(refs) = ref_col.as_mut() {
        let k_fk = count_of(dirt.fk_violation_rate, n);
        let mut rows = sample_distinct(rng, n, k_fk);
        rows.sort_unstable();
        for r in rows {
            let value = *dangling_next;
            *dangling_next -= 1;
            refs[r] = Value::Int(value);
            fk_violations.push(FkViolation { row: r, value });
        }
    }

    // 4. Appended near-duplicates, copying payload and ref cells (and
    //    therefore any defects those cells carry) under a fresh id.
    let k_dup = count_of(dirt.duplicate_rate, n);
    let mut bases = sample_distinct(rng, n, k_dup);
    bases.sort_unstable();
    let null_sets: Vec<HashSet<usize>> = columns_dirt
        .iter()
        .map(|c| c.nulls.iter().copied().collect())
        .collect();
    let alt_sets: Vec<HashSet<usize>> = columns_dirt
        .iter()
        .map(|c| c.alt_format.iter().copied().collect())
        .collect();
    let dangling_of: HashMap<usize, i64> = fk_violations
        .iter()
        .map(|v| (v.row, v.value))
        .collect();
    let mut duplicate_pairs: Vec<DuplicatePair> = Vec::new();
    for (t, &base_row) in bases.iter().enumerate() {
        let dup_row = n + t;
        id_col.push(Value::Int(offset + (n + t) as i64));
        for (p, col) in payload_cols.iter_mut().enumerate() {
            col.push(col[base_row].clone());
            if null_sets[p].contains(&base_row) {
                columns_dirt[p].nulls.push(dup_row);
            }
            if alt_sets[p].contains(&base_row) {
                columns_dirt[p].alt_format.push(dup_row);
            }
        }
        if let Some(refs) = ref_col.as_mut() {
            refs.push(refs[base_row].clone());
            if let Some(&value) = dangling_of.get(&base_row) {
                fk_violations.push(FkViolation { row: dup_row, value });
            }
        }
        duplicate_pairs.push(DuplicatePair { base_row, dup_row });
    }

    let mut columns = Vec::with_capacity(1 + payloads + usize::from(ref_col.is_some()));
    columns.push(id_col);
    columns.extend(payload_cols);
    if let Some(refs) = ref_col {
        columns.push(refs);
    }
    Fragment {
        columns,
        dirt: TableDirt {
            table: name,
            target_table,
            rows: n + k_dup,
            columns: columns_dirt,
            key_violations,
            fk_violations,
            duplicate_pairs,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_is_byte_identical() {
        let cfg = SynthConfig::default().with_rows(120);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.scenario.name, b.scenario.name);
        assert_eq!(a.scenario.sources, b.scenario.sources);
        assert_eq!(a.scenario.target, b.scenario.target);
        assert_eq!(a.scenario.correspondences, b.scenario.correspondences);
        assert_eq!(a.manifest, b.manifest);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthConfig::default().with_rows(60).with_seed(1));
        let b = generate(&SynthConfig::default().with_rows(60).with_seed(2));
        assert_ne!(a.scenario.sources, b.scenario.sources);
    }

    #[test]
    fn clean_sources_validate_against_their_schemas() {
        let out = generate(&SynthConfig::clean().with_rows(80).with_sources(2));
        assert!(out.manifest.is_clean());
        for db in &out.scenario.sources {
            db.assert_valid();
        }
    }

    #[test]
    fn shape_matches_knobs() {
        let mut cfg = SynthConfig::default().with_rows(50);
        cfg.shape.tables = 3;
        cfg.shape.fanout = 2;
        cfg.shape.payload_attrs = 4;
        cfg.shape.sources = 2;
        let out = generate(&cfg);
        assert_eq!(out.scenario.sources.len(), 2);
        assert_eq!(out.scenario.target.schema.table_count(), 3);
        for db in &out.scenario.sources {
            assert_eq!(db.schema.table_count(), 3 * 2);
        }
        // Fragments split the per-table row budget (before duplicates).
        let parent_rows: usize = (0..2).map(|j| fragment_rows(50, 2, j)).sum();
        assert_eq!(parent_rows, 50);
        // id + payloads for parent fragments; +ref for child fragments.
        let db = &out.scenario.sources[0];
        let parent = db.schema.table_id("items_p0").unwrap();
        assert_eq!(db.schema.table(parent).arity(), 1 + 4);
        let child = db.schema.table_id("orders_p0").unwrap();
        assert_eq!(db.schema.table(child).arity(), 1 + 4 + 1);
    }

    #[test]
    fn alt_formats_round_trip() {
        assert_eq!(alt_numeric("1234567"), "1,234,567");
        assert_eq!(alt_numeric("123"), "123");
        assert_eq!(alt_numeric("1234"), "1,234");
        assert_eq!(alt_date("2024-03-07"), "07/03/2024");
    }

    #[test]
    fn columnar_cache_is_seeded_by_the_generator() {
        let out = generate(&SynthConfig::default().with_rows(40));
        let db = &out.scenario.sources[0];
        let tid = db.schema.table_id("items_p0").unwrap();
        // The column store exists without any profiling having run; it
        // must agree with a rebuild from the derived rows.
        let data = db.instance.table(tid);
        let seeded = data.column_store(efes_relational::AttrId(0)).unwrap();
        let rebuilt = data.clone();
        let fresh = rebuilt.column_store(efes_relational::AttrId(0)).unwrap();
        assert_eq!(seeded, fresh);
    }
}
