//! The structure repair planner (paper §4.2, Tables 4 & 5).
//!
//! *"This procedure of picking a task and simulating its effects is
//! repeated until the virtual CSG instance contains no more violations.
//! [...] doing so allows for the detection of 'infinite cleaning loops',
//! where the execution order of cleaning tasks forms a cycle. In most
//! cases, these cycles are a consequence of contradicting repair tasks.
//! EFES proposes only consistent repair strategies."*
//!
//! ## Scaling (measured by `bench_scale`, 2026-08)
//!
//! This stage used to be the pipeline's dominant super-linear hot
//! path: the 10⁴ → 10⁶ sweep fitted `csg_planning` at an overall
//! exponent of ≈ 1.46 (≈ 2.4 between the last two points — 1.28 s to
//! 20.1 s for a 3.16× row increase), because the link-set evaluation
//! it leans on materialised `LinkSet = BTreeSet<(Vec<u32>, Vec<u32>)>`
//! per conflict check per planner iteration. The counting evaluator
//! (`CsgInstance::count_eval_ctx`, cached CSR adjacency plus an
//! epoch-invalidated expression memo — DESIGN.md §2i) removed the
//! materialisation entirely: the committed `BENCH_scale.json` sweep
//! now runs 10⁴ → 10⁷ rows with `csg_planning` fitted ≈ 1.20
//! (3.7 s at 10⁶, down from 20.1 s) and the CI `bench-scale` job
//! gates the exponent at ≤ 1.3 alongside profiling and matching. The
//! remaining per-iteration cost is the virtual-instance violation
//! simulation, which is linear in affected elements.

use crate::cardinality::Cardinality;
use crate::convert::CsgConversion;
use crate::graph::{Direction, RelKind, RelRef};
use crate::matching::RelationshipMatch;
use crate::violations::{ConflictKind, StructuralConflict};
use crate::virtual_instance::{AffectedCounts, VirtualCsg, VirtualViolation};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Expected result quality of the integration (paper §3.4: *"We defined
/// two instances of expected quality, namely low effort (removal of
/// tuples) and high quality (updates)."*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quality {
    /// Cheapest acceptable result — remove offending data.
    LowEffort,
    /// Best achievable result — repair offending data.
    HighQuality,
}

impl fmt::Display for Quality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quality::LowEffort => write!(f, "low effort"),
            Quality::HighQuality => write!(f, "high quality"),
        }
    }
}

/// The structural cleaning tasks of Table 4 (both quality columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StructureTaskKind {
    /// `Not null violated`, low effort.
    RejectTuples,
    /// `Not null violated`, high quality.
    AddMissingValues,
    /// `Unique violated`, low effort.
    SetValuesToNull,
    /// `Unique violated`, high quality.
    AggregateTuples,
    /// `Multiple attribute values`, low effort.
    KeepAnyValue,
    /// `Multiple attribute values`, high quality.
    MergeValues,
    /// `Value w/o enclosing tuple`, low effort.
    DropValues,
    /// `Value w/o enclosing tuple`, high quality — "Create enclosing
    /// tuple"; rendered as *Add tuples* in Table 5.
    CreateEnclosingTuples,
    /// `FK violated`, low effort.
    DeleteDanglingValues,
    /// `FK violated`, high quality.
    AddReferencedValues,
}

impl StructureTaskKind {
    /// Table 4: the task for a conflict kind at a quality level.
    pub fn for_conflict(kind: ConflictKind, quality: Quality) -> StructureTaskKind {
        use ConflictKind::*;
        use StructureTaskKind::*;
        match (kind, quality) {
            (NotNullViolated, Quality::LowEffort) => RejectTuples,
            (NotNullViolated, Quality::HighQuality) => AddMissingValues,
            (UniqueViolated, Quality::LowEffort) => SetValuesToNull,
            (UniqueViolated, Quality::HighQuality) => AggregateTuples,
            (MultipleAttributeValues, Quality::LowEffort) => KeepAnyValue,
            (MultipleAttributeValues, Quality::HighQuality) => MergeValues,
            (ValueWithoutEnclosingTuple, Quality::LowEffort) => DropValues,
            (ValueWithoutEnclosingTuple, Quality::HighQuality) => CreateEnclosingTuples,
            (FkViolated, Quality::LowEffort) => DeleteDanglingValues,
            (FkViolated, Quality::HighQuality) => AddReferencedValues,
        }
    }

    /// Display name as used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            StructureTaskKind::RejectTuples => "Reject tuples",
            StructureTaskKind::AddMissingValues => "Add missing values",
            StructureTaskKind::SetValuesToNull => "Set values to null",
            StructureTaskKind::AggregateTuples => "Aggregate tuples",
            StructureTaskKind::KeepAnyValue => "Keep any value",
            StructureTaskKind::MergeValues => "Merge values",
            StructureTaskKind::DropValues => "Drop values",
            StructureTaskKind::CreateEnclosingTuples => "Add tuples",
            StructureTaskKind::DeleteDanglingValues => "Delete dangling values",
            StructureTaskKind::AddReferencedValues => "Add referenced values",
        }
    }
}

/// One planned repair step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlannedRepair {
    /// The chosen task.
    pub kind: StructureTaskKind,
    /// The violated reading it repairs (index into the target CSG).
    pub target_rel: usize,
    /// The reading direction.
    pub direction: Direction,
    /// How often the task must be performed (its `#repetitions`
    /// parameter for the effort-calculation functions).
    pub repetitions: u64,
    /// Human-readable location, e.g. `records→artist` or the attribute
    /// name in parentheses as Table 5 prints it.
    pub location: String,
}

/// The planner failed to find a consistent repair strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlannerError {
    /// The simulation revisited a prior state: *"the execution order of
    /// cleaning tasks forms a cycle [...] a consequence of contradicting
    /// repair tasks."* Contains the task labels of the detected cycle.
    InfiniteCleaningLoop(Vec<String>),
    /// Safety valve: the simulation exceeded the iteration budget.
    IterationLimitExceeded(usize),
}

impl fmt::Display for PlannerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlannerError::InfiniteCleaningLoop(tasks) => {
                write!(f, "infinite cleaning loop: {}", tasks.join(" → "))
            }
            PlannerError::IterationLimitExceeded(n) => {
                write!(f, "repair simulation exceeded {n} iterations")
            }
        }
    }
}

impl std::error::Error for PlannerError {}

/// Knobs for the repair simulation.
#[derive(Debug, Clone)]
pub struct PlannerOptions {
    /// Iteration budget before giving up.
    pub max_iterations: usize,
    /// Model "Add missing values" as potentially colliding with a unique
    /// constraint on the same attribute. With the default (false), added
    /// values are assumed fresh; enabling this can produce contradicting
    /// repairs (add ↔ null-out) and exercises the loop detector.
    pub pessimistic_added_values: bool,
    /// Task adaptations: replace the Table 4 default for a conflict kind
    /// with a user-chosen task. Paper §6.1: *"If a data complexity aspect
    /// was properly recognized but we preferred a different integration
    /// task, we have adapted the proposed tasks."*
    pub overrides: Vec<(ConflictKind, StructureTaskKind)>,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            max_iterations: 1000,
            pessimistic_added_values: false,
            overrides: Vec::new(),
        }
    }
}

/// Classify a virtual violation (which aspect to repair first) into a
/// conflict kind. `too_many` aspects are handled before `too_few` on the
/// same reading, mirroring the paper's Table 5 where merge precedes any
/// fill-in.
fn classify_violation(g: &crate::graph::Csg, v: &VirtualViolation) -> ConflictKind {
    let rel_kind = g.relationship(v.reading.rel).kind;
    let prescribed_max = v.prescribed.max().flatten();
    let prescribed_min = v.prescribed.min().unwrap_or(0);
    let actual_max = v.actual.max().flatten();
    let actual_min = v.actual.min().unwrap_or(0);
    let exceeds = match (actual_max, prescribed_max) {
        (None, Some(_)) => true,
        (Some(a), Some(p)) => a > p,
        _ => false,
    };
    let falls_short = actual_min < prescribed_min;
    match (rel_kind, v.reading.dir) {
        (RelKind::Attribute, Direction::Forward) => {
            if exceeds && (v.affected.too_many > 0 || !falls_short) {
                ConflictKind::MultipleAttributeValues
            } else {
                ConflictKind::NotNullViolated
            }
        }
        (RelKind::Attribute, Direction::Backward) => {
            if falls_short && (v.affected.too_few > 0 || !exceeds) {
                ConflictKind::ValueWithoutEnclosingTuple
            } else {
                ConflictKind::UniqueViolated
            }
        }
        (RelKind::Equality, _) => ConflictKind::FkViolated,
    }
}

/// Apply a task's effect (and side effects) to the virtual instance.
/// Returns the repetition count consumed.
fn apply_task(
    v: &mut VirtualCsg<'_>,
    task: StructureTaskKind,
    reading: RelRef,
    opts: &PlannerOptions,
) -> u64 {
    let g = v.graph();
    let prescribed = g.card_of(reading).clone();
    let actual = v.actual_of(reading).clone();
    let affected = v.affected_of(reading);
    let p_min = prescribed.min().unwrap_or(0);
    let p_max = prescribed.max().flatten();
    let a_min = actual.min().unwrap_or(0);
    let a_max = actual.max().flatten();

    // Helper: cap the actual max down to the prescribed max.
    let capped_max = || -> Cardinality {
        match p_max {
            Some(mx) => Cardinality::range(a_min.min(mx), mx),
            None => actual.clone(),
        }
    };
    // Helper: raise the actual min up to the prescribed min.
    let raised_min = || -> Cardinality {
        match a_max {
            Some(mx) => Cardinality::range(p_min, mx.max(p_min)),
            None => Cardinality::at_least(p_min),
        }
    };

    match task {
        StructureTaskKind::MergeValues | StructureTaskKind::KeepAnyValue => {
            let reps = affected.too_many;
            v.set_actual(reading, capped_max());
            v.set_affected(
                reading,
                AffectedCounts {
                    too_few: affected.too_few,
                    too_many: 0,
                },
            );
            reps
        }
        StructureTaskKind::AddMissingValues => {
            let reps = affected.too_few;
            v.set_actual(reading, raised_min());
            v.set_affected(
                reading,
                AffectedCounts {
                    too_few: 0,
                    too_many: affected.too_many,
                },
            );
            if opts.pessimistic_added_values {
                // New values might collide with a unique prescription on
                // the same attribute: value→tuple may now exceed 1.
                let bwd = reading.reverse();
                let bwd_prescribed = g.card_of(bwd).clone();
                if bwd_prescribed.max().flatten() == Some(1) {
                    v.set_actual(bwd, Cardinality::one_or_more());
                    v.add_affected(
                        bwd,
                        AffectedCounts {
                            too_few: 0,
                            too_many: reps,
                        },
                    );
                }
            }
            reps
        }
        StructureTaskKind::RejectTuples => {
            let reps = affected.too_few;
            v.set_actual(reading, raised_min());
            v.set_affected(
                reading,
                AffectedCounts {
                    too_few: 0,
                    too_many: affected.too_many,
                },
            );
            reps
        }
        StructureTaskKind::SetValuesToNull => {
            // Null out surplus values: value→tuple capped; the owning
            // tuples may now miss a required value.
            let reps = affected.too_many;
            v.set_actual(reading, capped_max());
            v.set_affected(
                reading,
                AffectedCounts {
                    too_few: affected.too_few,
                    too_many: 0,
                },
            );
            let fwd = reading.reverse();
            let fwd_prescribed = g.card_of(fwd).clone();
            if fwd_prescribed.min().unwrap_or(0) >= 1 {
                let fwd_actual = v.actual_of(fwd).clone();
                let new_max = fwd_actual.max().flatten();
                v.set_actual(
                    fwd,
                    match new_max {
                        Some(mx) => Cardinality::range(0, mx),
                        None => Cardinality::any(),
                    },
                );
                v.add_affected(
                    fwd,
                    AffectedCounts {
                        too_few: reps,
                        too_many: 0,
                    },
                );
            }
            reps
        }
        StructureTaskKind::AggregateTuples => {
            // Merge tuples sharing a value: uniqueness restored, but the
            // merged tuples may now carry several values for *other*
            // attributes.
            let reps = affected.too_many;
            v.set_actual(reading, capped_max());
            v.set_affected(
                reading,
                AffectedCounts {
                    too_few: affected.too_few,
                    too_many: 0,
                },
            );
            for sib in v.sibling_attribute_rels(reading.rel) {
                let fwd = RelRef::fwd(sib);
                let fwd_prescribed = g.card_of(fwd).clone();
                if fwd_prescribed.max().flatten().is_some() {
                    let cur = v.actual_of(fwd).clone();
                    let lo = cur.min().unwrap_or(0);
                    v.set_actual(fwd, Cardinality::at_least(lo));
                    v.add_affected(
                        fwd,
                        AffectedCounts {
                            too_few: 0,
                            too_many: reps,
                        },
                    );
                }
            }
            reps
        }
        StructureTaskKind::DropValues => {
            let reps = affected.too_few;
            v.set_actual(reading, raised_min());
            v.set_affected(
                reading,
                AffectedCounts {
                    too_few: 0,
                    too_many: affected.too_many,
                },
            );
            reps
        }
        StructureTaskKind::CreateEnclosingTuples => {
            // Create a tuple per detached value. The new tuples have no
            // values for the table's other attributes (Figure 5b) —
            // except key-like attributes (unique value→tuple reading):
            // the mapping generates fresh key values mechanically, so
            // they need no cleaning task (Table 5 repairs only `title`,
            // not `id`).
            let reps = affected.too_few;
            v.set_actual(reading, raised_min());
            v.set_affected(
                reading,
                AffectedCounts {
                    too_few: 0,
                    too_many: affected.too_many,
                },
            );
            for sib in v.sibling_attribute_rels(reading.rel) {
                let fwd = RelRef::fwd(sib);
                if g.card_of(RelRef::bwd(sib)).max().flatten() == Some(1) {
                    continue; // key-like: generated, not hand-filled
                }
                let fwd_prescribed = g.card_of(fwd).clone();
                if fwd_prescribed.min().unwrap_or(0) >= 1 {
                    let cur = v.actual_of(fwd).clone();
                    let mx = cur.max().flatten();
                    v.set_actual(
                        fwd,
                        match mx {
                            Some(m) => Cardinality::range(0, m),
                            None => Cardinality::any(),
                        },
                    );
                    v.add_affected(
                        fwd,
                        AffectedCounts {
                            too_few: reps,
                            too_many: 0,
                        },
                    );
                }
            }
            reps
        }
        StructureTaskKind::DeleteDanglingValues => {
            let reps = affected.too_few.max(affected.too_many);
            v.set_actual(reading, g.card_of(reading).clone());
            v.set_affected(reading, AffectedCounts::default());
            reps
        }
        StructureTaskKind::AddReferencedValues => {
            // Insert the missing referenced values; they arrive without an
            // enclosing tuple in the referenced table.
            let reps = affected.too_few.max(affected.too_many);
            v.set_actual(reading, g.card_of(reading).clone());
            v.set_affected(reading, AffectedCounts::default());
            let referenced_node = g.end_of(RelRef::fwd(reading.rel));
            if let Some(attr_rel) = v.attribute_rel_into(referenced_node) {
                let bwd = RelRef::bwd(attr_rel);
                if g.card_of(bwd).min().unwrap_or(0) >= 1 {
                    let cur = v.actual_of(bwd).clone();
                    let mx = cur.max().flatten();
                    v.set_actual(
                        bwd,
                        match mx {
                            Some(m) => Cardinality::range(0, m),
                            None => Cardinality::any(),
                        },
                    );
                    v.add_affected(
                        bwd,
                        AffectedCounts {
                            too_few: reps,
                            too_many: 0,
                        },
                    );
                }
            }
            reps
        }
    }
}

/// Apply one repair task to a virtual instance, with its side effects —
/// the single-step form of the simulation, used to replay plans state by
/// state (regenerating Figure 5). Returns the repetition count consumed.
pub fn apply_single_repair(
    v: &mut VirtualCsg<'_>,
    task: StructureTaskKind,
    reading: RelRef,
) -> u64 {
    apply_task(v, task, reading, &PlannerOptions::default())
}

/// Derive the attribute name Table 5 prints in parentheses: the end node
/// of the reading, with its table prefix stripped.
fn location_label(g: &crate::graph::Csg, reading: RelRef) -> String {
    let node = match reading.dir {
        Direction::Forward => g.relationship(reading.rel).to,
        Direction::Backward => g.relationship(reading.rel).from,
    };
    let name = &g.node(node).name;
    name.rsplit('.').next().unwrap_or(name).to_owned()
}

/// Run the repair simulation: pick a violation, select its Table 4 task
/// for the requested quality, apply its (side) effects, repeat until the
/// virtual instance is clean. The returned list is already in a valid
/// execution order (causing tasks precede fixing tasks by construction).
pub fn plan_repairs(
    target_conv: &CsgConversion,
    matches: &[RelationshipMatch],
    conflicts: &[StructuralConflict],
    quality: Quality,
    opts: &PlannerOptions,
) -> Result<Vec<PlannedRepair>, PlannerError> {
    let mut v = VirtualCsg::from_conflicts(target_conv, matches, conflicts);
    let g = &target_conv.csg;
    let mut plan: Vec<PlannedRepair> = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(v.state_hash());

    for _ in 0..opts.max_iterations {
        let violations = v.violations();
        let Some(first) = violations.first() else {
            return Ok(plan);
        };
        let kind = classify_violation(g, first);
        let task = opts
            .overrides
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, t)| *t)
            .unwrap_or_else(|| StructureTaskKind::for_conflict(kind, quality));
        let reps = apply_task(&mut v, task, first.reading, opts);
        if reps > 0 {
            plan.push(PlannedRepair {
                kind: task,
                target_rel: first.reading.rel.0,
                direction: first.reading.dir,
                repetitions: reps,
                location: location_label(g, first.reading),
            });
        }
        let h = v.state_hash();
        if !seen.insert(h) {
            let cycle = plan.iter().map(|p| p.kind.label().to_owned()).collect();
            return Err(PlannerError::InfiniteCleaningLoop(cycle));
        }
    }
    if v.is_clean() {
        Ok(plan)
    } else {
        Err(PlannerError::IterationLimitExceeded(opts.max_iterations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::database_to_csg;
    use crate::graph::RelId;
    use efes_relational::{DataType, DatabaseBuilder};

    /// Target: records(artist NN, title NN) — build a conflict set that
    /// mirrors the paper: 503 multi-artist albums, 102 detached artists.
    fn paper_like_setup() -> (CsgConversion, Vec<StructuralConflict>) {
        let tgt = DatabaseBuilder::new("tgt")
            .table("records", |t| {
                t.attr("artist", DataType::Text)
                    .attr("title", DataType::Text)
                    .not_null("artist")
                    .not_null("title")
            })
            .build()
            .unwrap();
        let conv = database_to_csg(&tgt);
        let artist_rel = 0usize; // records→artist is the first relationship
        let conflicts = vec![
            StructuralConflict {
                target_rel: artist_rel,
                direction: Direction::Forward,
                prescribed: Cardinality::one(),
                inferred: Cardinality::one_or_more(),
                observed: Cardinality::range(1, 4),
                kind: ConflictKind::MultipleAttributeValues,
                violation_count: 503,
                too_few: 0,
                too_many: 503,
                constraint_label: "κ(records→records.artist) = 1".into(),
            },
            StructuralConflict {
                target_rel: artist_rel,
                direction: Direction::Backward,
                prescribed: Cardinality::one_or_more(),
                inferred: Cardinality::any(),
                observed: Cardinality::range(0, 3),
                kind: ConflictKind::ValueWithoutEnclosingTuple,
                violation_count: 102,
                too_few: 102,
                too_many: 0,
                constraint_label: "κ(records.artist→records) = 1..*".into(),
            },
        ];
        (conv, conflicts)
    }

    /// Build matches consistent with the conflicts: artist reads 1..* fwd,
    /// 0..* bwd in the source.
    fn paper_like_matches(conv: &CsgConversion) -> Vec<RelationshipMatch> {
        let matches = vec![RelationshipMatch {
            target: RelRef::fwd(RelId(0)),
            source_expr: crate::expr::RelExpr::Atomic(RelRef::fwd(RelId(0))),
            inferred_fwd: Cardinality::one_or_more(),
            inferred_bwd: Cardinality::any(),
        }];
        let _ = conv;
        matches
    }

    #[test]
    fn high_quality_plan_reproduces_table5_shape() {
        let (conv, conflicts) = paper_like_setup();
        let matches = paper_like_matches(&conv);
        let plan = plan_repairs(
            &conv,
            &matches,
            &conflicts,
            Quality::HighQuality,
            &PlannerOptions::default(),
        )
        .unwrap();
        let rendered: Vec<(String, u64)> = plan
            .iter()
            .map(|p| (format!("{} ({})", p.kind.label(), p.location), p.repetitions))
            .collect();
        // Table 5: Merge values ×503 (artist), Add tuples ×102 (records),
        // Add missing values ×102 (title). Order: the forward violation is
        // processed first (deterministic order), then the backward one,
        // whose side effect spawns the title repair.
        assert!(rendered.contains(&("Merge values (artist)".into(), 503)));
        assert!(rendered.contains(&("Add tuples (records)".into(), 102)));
        assert!(rendered.contains(&("Add missing values (title)".into(), 102)));
        assert_eq!(plan.len(), 3, "{rendered:?}");
        // Causal order: Add tuples precedes Add missing values (title).
        let add_tuples = plan.iter().position(|p| p.kind == StructureTaskKind::CreateEnclosingTuples).unwrap();
        let add_values = plan.iter().position(|p| p.kind == StructureTaskKind::AddMissingValues).unwrap();
        assert!(add_tuples < add_values);
    }

    #[test]
    fn low_effort_plan_uses_cheap_tasks() {
        let (conv, conflicts) = paper_like_setup();
        let matches = paper_like_matches(&conv);
        let plan = plan_repairs(
            &conv,
            &matches,
            &conflicts,
            Quality::LowEffort,
            &PlannerOptions::default(),
        )
        .unwrap();
        let kinds: Vec<StructureTaskKind> = plan.iter().map(|p| p.kind).collect();
        assert!(kinds.contains(&StructureTaskKind::KeepAnyValue));
        assert!(kinds.contains(&StructureTaskKind::DropValues));
        // Dropping detached values has no side effects: exactly 2 tasks.
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn no_conflicts_yields_empty_plan() {
        let (conv, _) = paper_like_setup();
        let plan = plan_repairs(
            &conv,
            &[],
            &[],
            Quality::HighQuality,
            &PlannerOptions::default(),
        )
        .unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn pessimistic_added_values_triggers_loop_detection() {
        // Target with a UNIQUE + NOT NULL attribute; a source that leaves
        // it empty. High-quality repair adds values; pessimistically they
        // collide with the unique constraint, whose repair nulls them out
        // again — a contradicting cycle the planner must detect.
        let tgt = DatabaseBuilder::new("t")
            .table("users", |t| {
                t.attr("email", DataType::Text)
                    .not_null("email")
                    .unique(&["email"])
            })
            .build()
            .unwrap();
        let conv = database_to_csg(&tgt);
        let conflicts = vec![StructuralConflict {
            target_rel: 0,
            direction: Direction::Forward,
            prescribed: Cardinality::one(),
            inferred: Cardinality::zero_or_one(),
            observed: Cardinality::zero_or_one(),
            kind: ConflictKind::NotNullViolated,
            violation_count: 10,
            too_few: 10,
            too_many: 0,
            constraint_label: "κ(users→users.email) = 1".into(),
        }];
        let matches = vec![RelationshipMatch {
            target: RelRef::fwd(RelId(0)),
            source_expr: crate::expr::RelExpr::Atomic(RelRef::fwd(RelId(0))),
            inferred_fwd: Cardinality::zero_or_one(),
            inferred_bwd: Cardinality::one(),
        }];
        let opts = PlannerOptions {
            pessimistic_added_values: true,
            // Adapt the unique repair to the low-effort null-out (§6.1
            // task adaptation): together with pessimistic added values
            // this contradicts "Add missing values" and must cycle.
            overrides: vec![(ConflictKind::UniqueViolated, StructureTaskKind::SetValuesToNull)],
            ..PlannerOptions::default()
        };
        let err = plan_repairs(&conv, &matches, &conflicts, Quality::HighQuality, &opts)
            .unwrap_err();
        assert!(matches!(err, PlannerError::InfiniteCleaningLoop(_)), "{err}");
    }

    #[test]
    fn fk_violations_planned_per_quality() {
        let tgt = DatabaseBuilder::new("t")
            .table("records", |t| {
                t.attr("id", DataType::Integer)
                    .attr("title", DataType::Text)
                    .primary_key(&["id"])
                    .not_null("title")
            })
            .table("tracks", |t| {
                t.attr("record", DataType::Integer)
                    .foreign_key(&["record"], "records", &["id"])
            })
            .build()
            .unwrap();
        let conv = database_to_csg(&tgt);
        // The equality relationship is the last one added.
        let fk_rel = conv.fk_rels[0].1;
        let conflicts = vec![StructuralConflict {
            target_rel: fk_rel.0,
            direction: Direction::Forward,
            prescribed: Cardinality::one(),
            inferred: Cardinality::zero_or_one(),
            observed: Cardinality::zero_or_one(),
            kind: ConflictKind::FkViolated,
            violation_count: 7,
            too_few: 7,
            too_many: 0,
            constraint_label: "κ(tracks.record→records.id) = 1".into(),
        }];
        let matches = vec![RelationshipMatch {
            target: RelRef::fwd(fk_rel),
            source_expr: crate::expr::RelExpr::Atomic(RelRef::fwd(fk_rel)),
            inferred_fwd: Cardinality::zero_or_one(),
            inferred_bwd: Cardinality::zero_or_one(),
        }];
        let low = plan_repairs(&conv, &matches, &conflicts, Quality::LowEffort, &PlannerOptions::default()).unwrap();
        assert_eq!(low[0].kind, StructureTaskKind::DeleteDanglingValues);
        let high = plan_repairs(&conv, &matches, &conflicts, Quality::HighQuality, &PlannerOptions::default()).unwrap();
        assert_eq!(high[0].kind, StructureTaskKind::AddReferencedValues);
        // High quality cascades: the new id values need enclosing records
        // tuples, which in turn need titles.
        let kinds: Vec<_> = high.iter().map(|p| p.kind).collect();
        assert!(kinds.contains(&StructureTaskKind::CreateEnclosingTuples));
        assert!(kinds.contains(&StructureTaskKind::AddMissingValues));
    }
}
