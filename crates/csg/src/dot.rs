//! Graphviz DOT rendering of CSGs — regenerates Figure 4.

use crate::graph::{Csg, NodeKind, RelKind};

/// Render a CSG as a Graphviz `digraph`.
///
/// Table nodes are rectangles, attribute nodes rounded (as in Figure 4);
/// equality relationships are dashed. Each edge is labelled
/// `fwd / bwd` with the prescribed cardinalities of both readings.
pub fn to_dot(g: &Csg) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", g.name));
    out.push_str("  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n");
    for (i, n) in g.nodes().iter().enumerate() {
        let shape = match n.kind {
            NodeKind::Table => "box",
            NodeKind::Attribute => "ellipse",
        };
        out.push_str(&format!(
            "  n{} [label=\"{}\", shape={}];\n",
            i, n.name, shape
        ));
    }
    for rel in g.relationships() {
        let style = match rel.kind {
            RelKind::Attribute => "solid",
            RelKind::Equality => "dashed",
        };
        out.push_str(&format!(
            "  n{} -> n{} [label=\"{} / {}\", style={}, dir=none];\n",
            rel.from.0, rel.to.0, rel.card_fwd, rel.card_bwd, style
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::Cardinality;
    use crate::graph::{Csg, NodeKind, RelKind};

    #[test]
    fn renders_shapes_and_styles() {
        let mut g = Csg::new("t");
        let a = g.add_node("tracks", NodeKind::Table);
        let b = g.add_node("tracks.record", NodeKind::Attribute);
        g.add_relationship(
            a,
            b,
            RelKind::Attribute,
            Cardinality::one(),
            Cardinality::one_or_more(),
        );
        let dot = to_dot(&g);
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("label=\"1 / 1..*\""));
        assert!(dot.contains("digraph \"t\""));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn equality_edges_are_dashed() {
        let mut g = Csg::new("t");
        let a = g.add_node("x", NodeKind::Attribute);
        let b = g.add_node("y", NodeKind::Attribute);
        g.add_relationship(
            a,
            b,
            RelKind::Equality,
            Cardinality::one(),
            Cardinality::zero_or_one(),
        );
        assert!(to_dot(&g).contains("style=dashed"));
    }
}

/// Render a virtual CSG state (Figure 5 style): edges whose actual
/// cardinality violates the prescription are highlighted red and
/// labelled `actual ⊄ prescribed`; satisfied-but-annotated edges are
/// labelled `actual ⊆ prescribed`.
pub fn virtual_state_to_dot(v: &crate::virtual_instance::VirtualCsg<'_>) -> String {
    use crate::graph::RelRef;
    let g = v.graph();
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}-state\" {{\n", g.name));
    out.push_str("  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n");
    for (i, n) in g.nodes().iter().enumerate() {
        let shape = match n.kind {
            NodeKind::Table => "box",
            NodeKind::Attribute => "ellipse",
        };
        out.push_str(&format!(
            "  n{} [label=\"{}\", shape={}];\n",
            i, n.name, shape
        ));
    }
    for (i, rel) in g.relationships().iter().enumerate() {
        let fwd = RelRef::fwd(crate::graph::RelId(i));
        let bwd = RelRef::bwd(crate::graph::RelId(i));
        let label_of = |r: RelRef| {
            let actual = v.actual_of(r);
            let prescribed = g.card_of(r);
            if v.is_satisfied(r) {
                format!("{actual} ⊆ {prescribed}")
            } else {
                format!("{actual} ⊄ {prescribed}")
            }
        };
        let violated = !v.is_satisfied(fwd) || !v.is_satisfied(bwd);
        let style = match rel.kind {
            RelKind::Attribute => "solid",
            RelKind::Equality => "dashed",
        };
        out.push_str(&format!(
            "  n{} -> n{} [label=\"{} / {}\", style={}, dir=none{}];\n",
            rel.from.0,
            rel.to.0,
            label_of(fwd),
            label_of(bwd),
            style,
            if violated { ", color=red, fontcolor=red" } else { "" },
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod virtual_dot_tests {
    use super::*;
    use crate::cardinality::Cardinality;
    use crate::graph::{NodeKind, RelId, RelKind, RelRef};
    use crate::virtual_instance::{AffectedCounts, VirtualCsg};

    #[test]
    fn violated_edges_are_red_with_subset_labels() {
        let mut g = Csg::new("t");
        let records = g.add_node("records", NodeKind::Table);
        let artist = g.add_node("artist", NodeKind::Attribute);
        let r = g.add_relationship(
            records,
            artist,
            RelKind::Attribute,
            Cardinality::one(),
            Cardinality::one_or_more(),
        );
        let v = VirtualCsg::with_actuals(
            &g,
            vec![(r, Cardinality::range(1, 4), Cardinality::one_or_more())],
            vec![(
                RelRef::fwd(r),
                AffectedCounts {
                    too_few: 0,
                    too_many: 503,
                },
            )],
        );
        let dot = virtual_state_to_dot(&v);
        assert!(dot.contains("color=red"), "{dot}");
        assert!(dot.contains("1..4 ⊄ 1"));
        assert!(dot.contains("1..* ⊆ 1..*"));
        let _ = RelId(0);
    }

    #[test]
    fn clean_states_have_no_red_edges() {
        let mut g = Csg::new("t");
        let a = g.add_node("a", NodeKind::Table);
        let b = g.add_node("b", NodeKind::Attribute);
        g.add_relationship(
            a,
            b,
            RelKind::Attribute,
            Cardinality::one(),
            Cardinality::one_or_more(),
        );
        let v = VirtualCsg::with_actuals(&g, vec![], vec![]);
        assert!(!virtual_state_to_dot(&v).contains("color=red"));
    }
}
