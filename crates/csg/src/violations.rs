//! The structure conflict detector: compare matched source relationships
//! against prescribed target cardinalities and count violating elements
//! in the source data (paper §4.1, Table 3).

use crate::cardinality::Cardinality;
use crate::convert::CsgConversion;
use crate::expr::RelExpr;
use crate::graph::{Direction, RelKind, RelRef};
use crate::matching::RelationshipMatch;
use serde::{Deserialize, Serialize};

/// Classification of a structural conflict — the left column of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConflictKind {
    /// A tuple lacks a required attribute value (`Not null violated`).
    NotNullViolated,
    /// A value is shared by more tuples than a unique constraint allows
    /// (`Unique violated`).
    UniqueViolated,
    /// A tuple carries more values for an attribute than the target can
    /// store (`Multiple attribute values`) — Example 3.2's multi-artist
    /// albums.
    MultipleAttributeValues,
    /// A value has no enclosing tuple (`Value w/o enclosing tuple`) —
    /// Example 3.2's artists without albums.
    ValueWithoutEnclosingTuple,
    /// A foreign-key value dangles (`FK violated`).
    FkViolated,
}

impl ConflictKind {
    /// Human-readable name as used in the paper's Table 4.
    pub fn label(self) -> &'static str {
        match self {
            ConflictKind::NotNullViolated => "Not null violated",
            ConflictKind::UniqueViolated => "Unique violated",
            ConflictKind::MultipleAttributeValues => "Multiple attribute values",
            ConflictKind::ValueWithoutEnclosingTuple => "Value w/o enclosing tuple",
            ConflictKind::FkViolated => "FK violated",
        }
    }
}

/// One structural conflict: a target-relationship reading whose matched
/// source relationship is less concise than prescribed, together with the
/// number of actually conflicting source elements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StructuralConflict {
    /// Index of the target relationship within the target CSG.
    pub target_rel: usize,
    /// Which reading of it is violated.
    pub direction: Direction,
    /// The prescribed cardinality on the target schema.
    pub prescribed: Cardinality,
    /// The inferred cardinality of the matched source relationship.
    pub inferred: Cardinality,
    /// The *observed* cardinality of the source data: the hull of actual
    /// per-element link counts. This is what the virtual CSG instance is
    /// annotated with (Figure 5's left-hand-side cardinalities).
    pub observed: Cardinality,
    /// Conflict class (drives task selection, Table 4).
    pub kind: ConflictKind,
    /// Number of source elements violating the prescription —
    /// *"determining the number of actually conflicting data elements"*.
    pub violation_count: u64,
    /// Of those, elements with too few links (e.g. zero artists).
    pub too_few: u64,
    /// Of those, elements with too many links (e.g. several artists).
    pub too_many: u64,
    /// `κ(ρ_label) = prescribed` rendering, e.g.
    /// `κ(records→artist) = 1` (Table 3's left column).
    pub constraint_label: String,
}

/// Classify a violated reading into its [`ConflictKind`].
fn classify(
    rel_kind: RelKind,
    direction: Direction,
    too_few: u64,
    too_many: u64,
) -> ConflictKind {
    match (rel_kind, direction) {
        (RelKind::Attribute, Direction::Forward) => {
            // tuple → value: too many values per tuple dominates (the
            // paper reports Example 3.2's 503 as one multiple-values
            // conflict); pure shortfalls are not-null violations.
            if too_many > 0 {
                ConflictKind::MultipleAttributeValues
            } else {
                ConflictKind::NotNullViolated
            }
        }
        (RelKind::Attribute, Direction::Backward) => {
            // value → tuple: detached values vs uniqueness.
            if too_few > 0 {
                ConflictKind::ValueWithoutEnclosingTuple
            } else {
                ConflictKind::UniqueViolated
            }
        }
        (RelKind::Equality, _) => ConflictKind::FkViolated,
    }
}

/// Detect all structural conflicts for a set of relationship matches.
///
/// For each matched target relationship and each reading direction, when
/// the inferred source cardinality is not a subset of the prescribed one,
/// the matched source expression is evaluated on the source instance and
/// the elements whose link count falls outside the prescription are
/// counted.
pub fn detect_conflicts(
    target_conv: &CsgConversion,
    source_conv: &CsgConversion,
    matches: &[RelationshipMatch],
) -> Vec<StructuralConflict> {
    let run = efes_exec::RunContext::unbounded();
    detect_conflicts_ctx(target_conv, source_conv, matches, &run)
        .expect("unbounded context never cancels")
}

/// Like [`detect_conflicts`], but cancellable: the counting
/// evaluations (the dominant cost on large sources) tick the run's
/// checkpoint and abort promptly when it fires.
pub fn detect_conflicts_ctx(
    target_conv: &CsgConversion,
    source_conv: &CsgConversion,
    matches: &[RelationshipMatch],
    run: &efes_exec::RunContext,
) -> Result<Vec<StructuralConflict>, efes_exec::Cancelled> {
    let ck = run.checkpoint();
    let mut out = Vec::new();
    for m in matches {
        let rel = m.target.rel;
        let rel_kind = target_conv.csg.relationship(rel).kind;
        for (direction, inferred) in [
            (Direction::Forward, &m.inferred_fwd),
            (Direction::Backward, &m.inferred_bwd),
        ] {
            let reading = RelRef { rel, dir: direction };
            let prescribed = target_conv.csg.card_of(reading).clone();
            if inferred.is_subset(&prescribed) {
                continue;
            }
            // Count actual offenders in the source data.
            let (expr, domain) = match direction {
                Direction::Forward => (
                    m.source_expr.clone(),
                    m.source_expr.start(&source_conv.csg),
                ),
                Direction::Backward => {
                    let reversed = reverse_expr(&m.source_expr);
                    let d = reversed.start(&source_conv.csg);
                    (reversed, d)
                }
            };
            let Some(domain) = domain else { continue };
            // Shared+memoised counting evaluation: repeated expressions
            // within one detection run (and any later evaluation against
            // the same unmutated instance) hit the memo instead of
            // re-sweeping the CSR adjacency.
            let counts = source_conv
                .instance
                .link_counts_shared_ctx(&expr, domain, &ck)?;
            let observed = match (counts.iter().min(), counts.iter().max()) {
                (Some(lo), Some(hi)) => Cardinality::range(*lo, *hi),
                _ => prescribed.clone(), // no domain elements: vacuously fine
            };
            let mut too_few = 0u64;
            let mut too_many = 0u64;
            let min = prescribed.min().unwrap_or(0);
            let max = prescribed.max().flatten();
            for &c in counts.iter() {
                if prescribed.contains(c) {
                    continue;
                }
                if c < min {
                    too_few += 1;
                } else if max.is_some_and(|mx| c > mx) {
                    too_many += 1;
                } else {
                    // Inside the hull but in a gap — rare; count as short.
                    too_few += 1;
                }
            }
            let violation_count = too_few + too_many;
            if violation_count == 0 {
                continue; // schema-level risk, but no conflicting data
            }
            let kind = classify(rel_kind, direction, too_few, too_many);
            let constraint_label = format!(
                "κ({}) = {}",
                target_conv.csg.reading_label(reading),
                prescribed
            );
            out.push(StructuralConflict {
                target_rel: rel.0,
                direction,
                prescribed,
                inferred: inferred.clone(),
                observed,
                kind,
                violation_count,
                too_few,
                too_many,
                constraint_label,
            });
        }
    }
    Ok(out)
}

/// Reverse a composition chain; other operators reverse structurally.
fn reverse_expr(e: &RelExpr) -> RelExpr {
    match e {
        RelExpr::Atomic(r) => RelExpr::Atomic(r.reverse()),
        RelExpr::Compose(a, b) => {
            RelExpr::Compose(Box::new(reverse_expr(b)), Box::new(reverse_expr(a)))
        }
        RelExpr::Union(a, b, m) => RelExpr::Union(
            Box::new(reverse_expr(a)),
            Box::new(reverse_expr(b)),
            *m,
        ),
        RelExpr::Join(a, b) => RelExpr::Join(Box::new(reverse_expr(a)), Box::new(reverse_expr(b))),
        RelExpr::Collateral(a, b) => {
            RelExpr::Collateral(Box::new(reverse_expr(a)), Box::new(reverse_expr(b)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::database_to_csg;
    use crate::matching::{match_relationships, NodeCorrespondences};
    use efes_relational::{DataType, DatabaseBuilder, Database};

    /// A scaled-down Example 3.2: albums with 0 or 2 artists, plus a
    /// detached artist. Source: albums(id, name) + credits(album, artist).
    fn source_db() -> Database {
        DatabaseBuilder::new("src")
            .table("albums", |t| {
                t.attr("id", DataType::Integer)
                    .attr("name", DataType::Text)
                    .primary_key(&["id"])
                    .not_null("name")
            })
            .table("credits", |t| {
                t.attr("album", DataType::Integer)
                    .attr("artist", DataType::Text)
                    .foreign_key(&["album"], "albums", &["id"])
                    .not_null("artist")
            })
            .rows(
                "albums",
                vec![
                    vec![1.into(), "Duo Album".into()],   // two artists
                    vec![2.into(), "Empty Album".into()], // zero artists
                    vec![3.into(), "Solo Album".into()],  // exactly one
                ],
            )
            .rows(
                "credits",
                vec![
                    vec![1.into(), "Alice".into()],
                    vec![1.into(), "Bob".into()],
                    vec![3.into(), "Carol".into()],
                ],
            )
            .build()
            .unwrap()
    }

    fn target_db() -> Database {
        DatabaseBuilder::new("tgt")
            .table("records", |t| {
                t.attr("id", DataType::Integer)
                    .attr("title", DataType::Text)
                    .attr("artist", DataType::Text)
                    .primary_key(&["id"])
                    .not_null("title")
                    .not_null("artist")
            })
            .build()
            .unwrap()
    }

    fn setup() -> (CsgConversion, CsgConversion, Vec<RelationshipMatch>) {
        let src = source_db();
        let tgt = target_db();
        let src_conv = database_to_csg(&src);
        let tgt_conv = database_to_csg(&tgt);
        let mut corr = NodeCorrespondences::new();
        // records ⇝ albums, records.id ⇝ albums.id, records.title ⇝
        // albums.name, records.artist ⇝ credits.artist.
        corr.insert(
            tgt_conv.csg.node_by_name("records").unwrap(),
            src_conv.csg.node_by_name("albums").unwrap(),
        );
        corr.insert(
            tgt_conv.csg.node_by_name("records.id").unwrap(),
            src_conv.csg.node_by_name("albums.id").unwrap(),
        );
        corr.insert(
            tgt_conv.csg.node_by_name("records.title").unwrap(),
            src_conv.csg.node_by_name("albums.name").unwrap(),
        );
        corr.insert(
            tgt_conv.csg.node_by_name("records.artist").unwrap(),
            src_conv.csg.node_by_name("credits.artist").unwrap(),
        );
        let matches = match_relationships(&tgt_conv.csg, &src_conv.csg, &corr);
        (tgt_conv, src_conv, matches)
    }

    #[test]
    fn detects_multi_artist_and_detached_artist_conflicts() {
        let (tgt, src, matches) = setup();
        let conflicts = detect_conflicts(&tgt, &src, &matches);
        // records→artist = 1 violated by albums 1 (two artists) and 2
        // (zero artists): count 2, classified as multiple values.
        let fwd = conflicts
            .iter()
            .find(|c| {
                c.direction == Direction::Forward
                    && c.constraint_label.contains("records→records.artist")
            })
            .expect("forward conflict");
        assert_eq!(fwd.violation_count, 2);
        assert_eq!(fwd.too_many, 1);
        assert_eq!(fwd.too_few, 1);
        assert_eq!(fwd.kind, ConflictKind::MultipleAttributeValues);
        assert_eq!(fwd.prescribed, Cardinality::one());
    }

    #[test]
    fn no_conflicts_for_identical_schema() {
        let tgt = target_db();
        let tgt_conv = database_to_csg(&tgt);
        let mut corr = NodeCorrespondences::new();
        for (i, _) in tgt_conv.csg.nodes().iter().enumerate() {
            corr.insert(crate::graph::NodeId(i), crate::graph::NodeId(i));
        }
        let matches = match_relationships(&tgt_conv.csg, &tgt_conv.csg, &corr);
        let conflicts = detect_conflicts(&tgt_conv, &tgt_conv, &matches);
        assert!(conflicts.is_empty(), "identical schemas must be clean: {conflicts:?}");
    }

    #[test]
    fn conflicts_carry_readable_labels() {
        let (tgt, src, matches) = setup();
        let conflicts = detect_conflicts(&tgt, &src, &matches);
        assert!(conflicts
            .iter()
            .all(|c| c.constraint_label.starts_with("κ(")));
    }

    #[test]
    fn reverse_expr_round_trips() {
        let (tgt, src, matches) = setup();
        let _ = tgt;
        for m in &matches {
            let rev = reverse_expr(&m.source_expr);
            let back = reverse_expr(&rev);
            assert_eq!(back.render(&src.csg), m.source_expr.render(&src.csg));
        }
    }
}
