//! # efes-csg
//!
//! **Cardinality-constrained schema graphs** (CSGs) — the modelling
//! formalism of §4 of *Estimating Data Integration and Cleaning Effort*
//! (Kruse, Papotti, Naumann, EDBT 2015), built in full:
//!
//! * [`cardinality`] — cardinality sets `κ: P → 2^ℕ` as normalised unions
//!   of integer intervals, with the inference operators of Lemmas 1–4
//!   (composition, union with `+`/`+̂`, join, collateral);
//! * [`graph`] — CSG nodes (table/attribute), relationships with
//!   prescribed cardinalities in both directions;
//! * [`expr`] — the relationship-construction algebra `∘ ∪ ⋈ ∥` and static
//!   cardinality inference;
//! * [`instance`] — CSG instances `I(Γ) = (I_N, I_P)` and expression
//!   evaluation over them;
//! * [`convert`] — lossless conversion of relational databases into CSGs
//!   (*"any relational database can be turned into a CSG without loss of
//!   information"*);
//! * [`matching`] — matching target relationships to source relationship
//!   expressions as a graph-search problem, with the conciseness order and
//!   the Occam's-razor tie-break;
//! * [`violations`] — the structure conflict detector: classify and count
//!   structural conflicts in source data (Table 3);
//! * [`virtual_instance`] — virtual CSG instances with *actual* vs
//!   *prescribed* cardinalities and cleaning-task side-effect simulation
//!   (Figure 5);
//! * [`nary`] — n-ary uniqueness and composite foreign keys via the
//!   join and collateral operators;
//! * [`planner`] — the structure repair planner: task selection per result
//!   quality (Table 4), ordering, and infinite-cleaning-loop detection;
//! * [`dot`] — Graphviz rendering (regenerates Figure 4).

#![warn(missing_docs)]

pub mod cardinality;
pub mod convert;
pub mod dot;
pub mod expr;
pub mod graph;
pub mod instance;
pub mod matching;
pub mod nary;
pub mod planner;
pub mod violations;
pub mod virtual_instance;

pub use cardinality::Cardinality;
pub use convert::{database_to_csg, database_to_csg_ctx};
pub use expr::{DomainWidth, RelExpr};
pub use graph::{Csg, Direction, NodeId, NodeKind, RelId, RelKind, RelRef};
pub use instance::{eval_memo_counters, CsgInstance, CSG_COUNT_ENV_VAR};
pub use matching::{
    match_relationships, match_relationships_with, NodeCorrespondences, RelationshipMatch,
};
pub use nary::{
    composite_fk_violations, composite_fk_violations_reference, composite_unique_violations,
    composite_unique_violations_reference, fd_violations,
};
pub use planner::{plan_repairs, PlannedRepair, PlannerError, Quality, StructureTaskKind};
pub use violations::{detect_conflicts, detect_conflicts_ctx, ConflictKind, StructuralConflict};
pub use virtual_instance::VirtualCsg;
