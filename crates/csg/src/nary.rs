//! N-ary constraints through the relationship algebra.
//!
//! Paper §4.1: *"prescribing cardinalities not only to atomic but also to
//! complex relationships further allows to express n-ary versions of the
//! above constraints and functional dependencies"*; *"The join can be
//! combined with other operators to express n-ary uniqueness
//! constraints"*; *"The collateral can be applied to express n-ary
//! foreign keys."*
//!
//! This module puts the `⋈` and `∥` operators to that use: composite
//! uniqueness and composite foreign keys are expressed as relationship
//! expressions over the converted CSG and checked by evaluating those
//! expressions on the instance — no shortcut through the relational
//! layer.

use crate::convert::CsgConversion;
use crate::expr::RelExpr;
use crate::graph::RelRef;
use crate::instance::LinkSet;
use efes_exec::RunContext;
use efes_relational::schema::{AttrId, TableId};
use std::collections::{HashMap, HashSet};

/// Pack a `(u32, u32)` index pair into one `u64` set key — the
/// "index-based sets instead of `Vec<u32>` keys" hot path for the
/// 2-ary constraints.
fn pack(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// The join expression for an n-ary uniqueness constraint over `attrs`
/// of `table`: `ρ_{a₁→T} ⋈ ρ_{a₂→T} ⋈ …` (value→tuple readings joined on
/// the common tuple codomain). The constraint holds iff every compound
/// value combination links at most one tuple.
pub fn composite_unique_expr(conv: &CsgConversion, table: TableId, attrs: &[AttrId]) -> RelExpr {
    assert!(attrs.len() >= 2, "n-ary uniqueness needs ≥ 2 attributes");
    let mut iter = attrs.iter();
    let first = RelExpr::Atomic(RelRef::bwd(conv.attr_rel(table, *iter.next().unwrap())));
    iter.fold(first, |acc, a| {
        RelExpr::Join(
            Box::new(acc),
            Box::new(RelExpr::Atomic(RelRef::bwd(conv.attr_rel(table, *a)))),
        )
    })
}

/// Count the violations of an n-ary uniqueness constraint: compound
/// value combinations shared by two or more tuples. Each tuple beyond
/// the first per combination counts as one violation (matching the
/// relational validator's duplicate counting).
///
/// Computed directly from CSR adjacency: each tuple's distinct value
/// sets per attribute are crossed into combination keys, so the
/// per-combination tally equals the join oracle's distinct-tuple count
/// without materialising a single `Vec<u32>` link key
/// ([`composite_unique_violations_reference`] pins the equivalence).
pub fn composite_unique_violations(
    conv: &CsgConversion,
    table: TableId,
    attrs: &[AttrId],
) -> u64 {
    assert!(attrs.len() >= 2, "n-ary uniqueness needs ≥ 2 attributes");
    let run = RunContext::unbounded();
    let ck = run.checkpoint();
    let inst = &conv.instance;
    let readings: Vec<RelRef> = attrs
        .iter()
        .map(|a| RelRef::fwd(conv.attr_rel(table, *a)))
        .collect();
    let n_tuples = inst.element_count(conv.table_node(table)) as u32;
    let mut tuples_per_combo: HashMap<u64, u64> = HashMap::new();
    let mut tuples_per_wide_combo: HashMap<Box<[u32]>, u64> = HashMap::new();
    let mut scratch = Vec::new();
    'tuples: for t in 0..n_tuples {
        let mut rows: Vec<&[u32]> = Vec::with_capacity(readings.len());
        for r in &readings {
            let row = inst
                .csr_row(*r, t, &ck)
                .expect("unbounded context never cancels");
            if row.is_empty() {
                continue 'tuples; // a missing component joins nothing
            }
            rows.push(row);
        }
        if let [va, vb] = rows.as_slice() {
            // 2-ary fast path: packed u64 combination keys.
            for &a in *va {
                for &b in *vb {
                    *tuples_per_combo.entry(pack(a, b)).or_insert(0) += 1;
                }
            }
        } else {
            // General n-ary: cross the per-attribute value sets.
            scratch.clear();
            cross(&rows, &mut scratch, &mut tuples_per_wide_combo);
        }
    }
    tuples_per_combo
        .values()
        .chain(tuples_per_wide_combo.values())
        .map(|tuples| tuples.saturating_sub(1))
        .sum()
}

/// Recursively cross per-attribute value rows into combination keys,
/// bumping each combination's tuple tally once.
fn cross(rows: &[&[u32]], prefix: &mut Vec<u32>, tally: &mut HashMap<Box<[u32]>, u64>) {
    match rows.split_first() {
        None => {
            *tally.entry(prefix.as_slice().into()).or_insert(0) += 1;
        }
        Some((head, rest)) => {
            for &v in *head {
                prefix.push(v);
                cross(rest, prefix, tally);
                prefix.pop();
            }
        }
    }
}

/// The pre-CSR implementation of [`composite_unique_violations`]:
/// evaluate the join expression to its full link set and group compound
/// domains. Kept as the differential-test oracle.
pub fn composite_unique_violations_reference(
    conv: &CsgConversion,
    table: TableId,
    attrs: &[AttrId],
) -> u64 {
    let expr = composite_unique_expr(conv, table, attrs);
    let links = conv.instance.eval(&expr);
    // links: ((v₁, …, vₙ), tuple). The join already restricts to
    // combinations co-occurring in a tuple; group by compound domain.
    let mut per_combo: HashMap<&[u32], HashSet<&[u32]>> = HashMap::new();
    for (dom, cod) in &links {
        per_combo
            .entry(dom.as_slice())
            .or_default()
            .insert(cod.as_slice());
    }
    per_combo
        .values()
        .map(|tuples| (tuples.len() as u64).saturating_sub(1))
        .sum()
}

/// Keep only the "diagonal" links of an expression built from two paths
/// leaving the same node: compound domains `[x, y]` with `x == y`
/// collapse to `[x]`. This is how a collateral of two readings of one
/// tuple is restricted to that tuple's own value pair.
fn diagonal(links: &LinkSet) -> LinkSet {
    links
        .iter()
        .filter(|(dom, _)| dom.len() == 2 && dom[0] == dom[1])
        .map(|(dom, cod)| (vec![dom[0]], cod.clone()))
        .collect()
}

/// Count the violations of a composite (two-column) foreign key using
/// the collateral operator: the referencing tuples' value *pairs* —
/// `(ρ_{RT→fa} ∘ eq_a) ∥ (ρ_{RT→fb} ∘ eq_b)` restricted to the diagonal
/// — must each co-occur in one referenced tuple, computed as the
/// diagonal of `ρ_{T→pa} ∥ ρ_{T→pb}`.
///
/// Returns the number of referencing tuples whose pair has no referenced
/// counterpart (including tuples whose components dangle individually).
///
/// Computed directly from CSR adjacency without materialising either
/// collateral's link set: the referenced pair set is a `HashSet<u64>` of
/// packed index pairs, and each referencing tuple resolves to the
/// lexicographically greatest `(b, d)` pair of its equality images —
/// the same representative the reference implementation's last-wins
/// `HashMap` insert over the sorted `BTreeSet` picks (the per-tuple
/// pair set is a cross product, so the lex-max pair is
/// `(max b, max d)`). [`composite_fk_violations_reference`] pins the
/// equivalence.
pub fn composite_fk_violations(
    conv: &CsgConversion,
    from_table: TableId,
    from_attrs: (AttrId, AttrId),
    eq_rels: (crate::graph::RelId, crate::graph::RelId),
    to_table: TableId,
    to_attrs: (AttrId, AttrId),
) -> u64 {
    let run = RunContext::unbounded();
    let ck = run.checkpoint();
    let inst = &conv.instance;
    let row = |r: RelRef, f: u32| {
        inst.csr_row(r, f, &ck)
            .expect("unbounded context never cancels")
    };

    // Referenced side: every (pa, pb) value-index pair co-occurring in
    // one referenced tuple — the diagonal of `ρ_{T→pa} ∥ ρ_{T→pb}`.
    let pa = RelRef::fwd(conv.attr_rel(to_table, to_attrs.0));
    let pb = RelRef::fwd(conv.attr_rel(to_table, to_attrs.1));
    let n_to_tuples = inst.element_count(conv.table_node(to_table)) as u32;
    let mut referenced_pairs: HashSet<u64> = HashSet::new();
    for u in 0..n_to_tuples {
        for &b in row(pa, u) {
            for &d in row(pb, u) {
                referenced_pairs.insert(pack(b, d));
            }
        }
    }

    // Referencing side: each tuple carrying both fk components resolves
    // through attribute + equality links to referenced component
    // indices; the (max, max) representative pair must be referenced.
    let fa = RelRef::fwd(conv.attr_rel(from_table, from_attrs.0));
    let fb = RelRef::fwd(conv.attr_rel(from_table, from_attrs.1));
    let eq_a = RelRef::fwd(eq_rels.0);
    let eq_b = RelRef::fwd(eq_rels.1);
    let n_from_tuples = inst.element_count(conv.table_node(from_table)) as u32;
    let mut violations = 0u64;
    for t in 0..n_from_tuples {
        let va = row(fa, t);
        if va.is_empty() {
            continue; // NULL component: SQL MATCH SIMPLE passes
        }
        let vb = row(fb, t);
        if vb.is_empty() {
            continue;
        }
        let max_b = va.iter().flat_map(|&v| row(eq_a, v)).max();
        let max_d = vb.iter().flat_map(|&v| row(eq_b, v)).max();
        match (max_b, max_d) {
            (Some(&b), Some(&d)) if referenced_pairs.contains(&pack(b, d)) => {}
            _ => violations += 1,
        }
    }
    violations
}

/// The pre-CSR implementation of [`composite_fk_violations`]: evaluate
/// both collaterals to full link sets and restrict to their diagonals.
/// Kept as the differential-test oracle.
pub fn composite_fk_violations_reference(
    conv: &CsgConversion,
    from_table: TableId,
    from_attrs: (AttrId, AttrId),
    eq_rels: (crate::graph::RelId, crate::graph::RelId),
    to_table: TableId,
    to_attrs: (AttrId, AttrId),
) -> u64 {
    // Referencing side: tuple → referenced key-component values.
    let via = |attr: AttrId, eq: crate::graph::RelId| {
        RelExpr::Compose(
            Box::new(RelExpr::Atomic(RelRef::fwd(conv.attr_rel(from_table, attr)))),
            Box::new(RelExpr::Atomic(RelRef::fwd(eq))),
        )
    };
    let referencing = RelExpr::Collateral(
        Box::new(via(from_attrs.0, eq_rels.0)),
        Box::new(via(from_attrs.1, eq_rels.1)),
    );
    let referencing_pairs = diagonal(&conv.instance.eval(&referencing));

    // Referenced side: tuple → its own key pair.
    let referenced = RelExpr::Collateral(
        Box::new(RelExpr::Atomic(RelRef::fwd(conv.attr_rel(to_table, to_attrs.0)))),
        Box::new(RelExpr::Atomic(RelRef::fwd(conv.attr_rel(to_table, to_attrs.1)))),
    );
    let referenced_pairs: HashSet<Vec<u32>> = diagonal(&conv.instance.eval(&referenced))
        .into_iter()
        .map(|(_, cod)| cod)
        .collect();

    // A referencing tuple with a resolvable pair not in the referenced
    // set violates; tuples whose components dangle never reach
    // `referencing_pairs` (the equality link is missing), so count them
    // from the total of tuples carrying both components.
    let resolvable: HashMap<Vec<u32>, &Vec<u32>> = referencing_pairs
        .iter()
        .map(|(dom, cod)| (dom.clone(), cod))
        .collect();
    let mut violations = 0u64;
    // Tuples with both fk components present:
    let fa_links: HashMap<u32, ()> = conv
        .instance
        .links_of(conv.attr_rel(from_table, from_attrs.0))
        .iter()
        .map(|(t, _)| (*t, ()))
        .collect();
    let fb_links: HashSet<u32> = conv
        .instance
        .links_of(conv.attr_rel(from_table, from_attrs.1))
        .iter()
        .map(|(t, _)| *t)
        .collect();
    for t in fa_links.keys() {
        if !fb_links.contains(t) {
            continue; // NULL component: SQL MATCH SIMPLE passes
        }
        match resolvable.get(&vec![*t]) {
            Some(pair) if referenced_pairs.contains(*pair) => {}
            _ => violations += 1,
        }
    }
    violations
}

/// Count the violations of a functional dependency `lhs → rhs` within
/// one table, expressed through the algebra: the composition
/// `ρ_{lhs→T} ∘ ρ_{T→rhs}` links each lhs *value* to the rhs values it
/// determines; the FD holds iff every lhs value links at most one
/// distinct rhs value (paper §4.1: complex-relationship cardinalities
/// "express n-ary versions of the above constraints and functional
/// dependencies").
pub fn fd_violations(conv: &CsgConversion, table: TableId, lhs: AttrId, rhs: AttrId) -> u64 {
    let expr = RelExpr::Compose(
        Box::new(RelExpr::Atomic(RelRef::bwd(conv.attr_rel(table, lhs)))),
        Box::new(RelExpr::Atomic(RelRef::fwd(conv.attr_rel(table, rhs)))),
    );
    let lhs_node = conv.attr_node(table, lhs);
    conv.instance
        .link_counts(&expr, lhs_node)
        .into_iter()
        .filter(|c| *c > 1)
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::Cardinality;
    use crate::convert::database_to_csg;
    use efes_relational::{DataType, DatabaseBuilder};

    /// credits(artist_list, position) with a duplicate combination.
    #[test]
    fn composite_unique_counts_duplicate_combinations() {
        let db = DatabaseBuilder::new("d")
            .table("credits", |t| {
                t.attr("list", DataType::Integer)
                    .attr("position", DataType::Integer)
            })
            .rows(
                "credits",
                vec![
                    vec![1.into(), 1.into()],
                    vec![1.into(), 2.into()],
                    vec![1.into(), 1.into()], // duplicate (1,1)
                    vec![2.into(), 1.into()],
                    vec![2.into(), 1.into()], // duplicate (2,1)
                    vec![2.into(), 1.into()], // triplicate (2,1)
                ],
            )
            .build()
            .unwrap();
        let conv = database_to_csg(&db);
        let (t, _) = db.schema.resolve("credits", "list").unwrap();
        let violations = composite_unique_violations(
            &conv,
            t,
            &[AttrId(0), AttrId(1)],
        );
        // (1,1): 1 extra tuple; (2,1): 2 extra tuples.
        assert_eq!(violations, 3);
    }

    #[test]
    fn composite_unique_clean_table_has_no_violations() {
        let db = DatabaseBuilder::new("d")
            .table("credits", |t| {
                t.attr("list", DataType::Integer)
                    .attr("position", DataType::Integer)
            })
            .rows(
                "credits",
                vec![
                    vec![1.into(), 1.into()],
                    vec![1.into(), 2.into()],
                    vec![2.into(), 1.into()],
                ],
            )
            .build()
            .unwrap();
        let conv = database_to_csg(&db);
        assert_eq!(
            composite_unique_violations(&conv, TableId(0), &[AttrId(0), AttrId(1)]),
            0
        );
    }

    #[test]
    fn composite_unique_expr_infers_via_join() {
        // Static inference: joining two value→tuple readings with max
        // m = min(max κ₁, max κ₂) produces 1..m (Lemma 3).
        let db = DatabaseBuilder::new("d")
            .table("t", |t| {
                t.attr("a", DataType::Integer).attr("b", DataType::Integer)
            })
            .rows("t", vec![vec![1.into(), 2.into()], vec![1.into(), 3.into()], vec![2.into(), 2.into()]])
            .build()
            .unwrap();
        let conv = database_to_csg(&db);
        let expr = composite_unique_expr(&conv, TableId(0), &[AttrId(0), AttrId(1)]);
        // Both readings are 1..* (not unique individually) → join 1..*.
        assert_eq!(expr.inferred_cardinality(&conv.csg), Cardinality::one_or_more());
    }

    #[test]
    fn fd_violations_counted_through_the_algebra() {
        // artist → genre: artist 1 maps to two genres (violation);
        // artist 2 is consistent.
        let db = DatabaseBuilder::new("d")
            .table("albums", |t| {
                t.attr("artist", DataType::Integer).attr("genre", DataType::Text)
            })
            .rows(
                "albums",
                vec![
                    vec![1.into(), "rock".into()],
                    vec![1.into(), "jazz".into()], // breaks artist→genre
                    vec![2.into(), "pop".into()],
                    vec![2.into(), "pop".into()],
                ],
            )
            .build()
            .unwrap();
        let conv = database_to_csg(&db);
        assert_eq!(fd_violations(&conv, TableId(0), AttrId(0), AttrId(1)), 1);
        // genre → artist: rock→1, jazz→1, pop→2 — all functional.
        assert_eq!(fd_violations(&conv, TableId(0), AttrId(1), AttrId(0)), 0);
    }

    /// Composite FK over (list, position) with one dangling pair whose
    /// components exist individually — the case a per-column check
    /// cannot catch.
    #[test]
    fn composite_fk_catches_pairwise_dangling_references() {
        let db = DatabaseBuilder::new("d")
            .table("slots", |t| {
                t.attr("list", DataType::Integer)
                    .attr("position", DataType::Integer)
                    .unique(&["list", "position"])
            })
            .table("entries", |t| {
                t.attr("list", DataType::Integer)
                    .attr("position", DataType::Integer)
                    .attr("artist", DataType::Text)
                    .foreign_key(&["list", "position"], "slots", &["list", "position"])
            })
            .rows(
                "slots",
                vec![
                    vec![1.into(), 1.into()],
                    vec![1.into(), 2.into()],
                    vec![2.into(), 1.into()],
                ],
            )
            .rows(
                "entries",
                vec![
                    vec![1.into(), 1.into(), "ok".into()],
                    // (2,2): both 2s exist somewhere, but never together.
                    vec![2.into(), 2.into(), "pairwise dangling".into()],
                ],
            )
            .build()
            .unwrap();
        let conv = database_to_csg(&db);
        // The per-column relational validator would pass component
        // checks; the true composite check must flag one violation.
        let eq_a = conv.fk_rels[0].1;
        let eq_b = conv.fk_rels[1].1;
        let violations = composite_fk_violations(
            &conv,
            TableId(1),
            (AttrId(0), AttrId(1)),
            (eq_a, eq_b),
            TableId(0),
            (AttrId(0), AttrId(1)),
        );
        assert_eq!(violations, 1);
    }

    #[test]
    fn composite_fk_clean_reference_has_no_violations() {
        let db = DatabaseBuilder::new("d")
            .table("slots", |t| {
                t.attr("list", DataType::Integer)
                    .attr("position", DataType::Integer)
                    .unique(&["list", "position"])
            })
            .table("entries", |t| {
                t.attr("list", DataType::Integer)
                    .attr("position", DataType::Integer)
                    .foreign_key(&["list", "position"], "slots", &["list", "position"])
            })
            .rows("slots", vec![vec![1.into(), 1.into()], vec![1.into(), 2.into()]])
            .rows("entries", vec![vec![1.into(), 1.into()], vec![1.into(), 2.into()]])
            .build()
            .unwrap();
        let conv = database_to_csg(&db);
        let eq_a = conv.fk_rels[0].1;
        let eq_b = conv.fk_rels[1].1;
        assert_eq!(
            composite_fk_violations(
                &conv,
                TableId(1),
                (AttrId(0), AttrId(1)),
                (eq_a, eq_b),
                TableId(0),
                (AttrId(0), AttrId(1)),
            ),
            0
        );
    }
}
