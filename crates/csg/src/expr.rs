//! The relationship-construction algebra: `∘`, `∪`, `⋈`, `∥`.
//!
//! *"Another important feature of CSGs is the ability to combine
//! relationships into complex relationships and to analyze their
//! properties."* (§4.1) — [`RelExpr`] is that combinator language, and
//! [`RelExpr::inferred_cardinality`] implements the static analysis of
//! Lemmas 1–4.

use crate::cardinality::Cardinality;
use crate::graph::{Csg, NodeId, RelRef};
use serde::{Deserialize, Serialize};

/// Width of the domain keys an expression's links carry when evaluated
/// on an instance — the static analysis behind the counting evaluator's
/// handling of `⋈`/`∥` and behind the explicit compound-domain contract
/// of [`CsgInstance::link_counts`](crate::instance::CsgInstance::link_counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainWidth {
    /// Every link's domain key is a single element index (atomic
    /// readings, compositions and unions of them).
    Singleton,
    /// Every link's domain key is a tuple of two or more element indices
    /// (the expression is headed by a join or collateral).
    Compound,
    /// The link set mixes both widths (a union of a singleton-domain and
    /// a compound-domain branch).
    Mixed,
}

/// How the domains/codomains of two united relationships relate — the case
/// split of Lemma 2. Statically this is generally unknowable, so the union
/// constructor takes it as an explicit assumption (instance evaluation can
/// determine it exactly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnionMode {
    /// `I_P(ρ₁)` and `I_P(ρ₂)` have disjoint domains → `κ₁ ∪ κ₂`.
    DisjointDomains,
    /// Equal domains, disjoint codomains → `κ₁ + κ₂`.
    EqualDomainsDisjointCodomains,
    /// Equal domains, overlapping codomains → `κ₁ +̂ κ₂`.
    EqualDomainsOverlappingCodomains,
}

/// A (possibly complex) relationship expression over a [`Csg`].
///
/// `Hash` + `Eq` make the expression usable as a memo key: evaluation
/// results are cached per `(RelExpr, domain)` in
/// [`CsgInstance`](crate::instance::CsgInstance)'s expression memo.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelExpr {
    /// An atomic relationship read in one direction.
    Atomic(RelRef),
    /// Composition `ρ₁ ∘ ρ₂` — concatenates adjacent relationships.
    Compose(Box<RelExpr>, Box<RelExpr>),
    /// Union `ρ₁ ∪ ρ₂` under an explicit domain assumption.
    Union(Box<RelExpr>, Box<RelExpr>, UnionMode),
    /// Join `ρ₁ ⋈ ρ₂` — connects links with equal codomain values,
    /// inducing a relationship between `A × B` and `C`.
    Join(Box<RelExpr>, Box<RelExpr>),
    /// Collateral `ρ₁ ∥ ρ₂` — induces a relationship between `A × C` and
    /// `B × D`; used for n-ary foreign keys.
    Collateral(Box<RelExpr>, Box<RelExpr>),
}

impl RelExpr {
    /// Build a composition chain from a path of directed readings.
    /// Panics on an empty path.
    pub fn path(steps: &[RelRef]) -> RelExpr {
        assert!(!steps.is_empty(), "empty relationship path");
        let mut iter = steps.iter();
        let mut expr = RelExpr::Atomic(*iter.next().unwrap());
        for s in iter {
            expr = RelExpr::Compose(Box::new(expr), Box::new(RelExpr::Atomic(*s)));
        }
        expr
    }

    /// Static cardinality inference per Lemmas 1–4.
    pub fn inferred_cardinality(&self, g: &Csg) -> Cardinality {
        match self {
            RelExpr::Atomic(r) => g.card_of(*r).clone(),
            RelExpr::Compose(a, b) => a
                .inferred_cardinality(g)
                .compose(&b.inferred_cardinality(g)),
            RelExpr::Union(a, b, mode) => {
                let ka = a.inferred_cardinality(g);
                let kb = b.inferred_cardinality(g);
                match mode {
                    UnionMode::DisjointDomains => ka.union(&kb),
                    UnionMode::EqualDomainsDisjointCodomains => ka.plus(&kb),
                    UnionMode::EqualDomainsOverlappingCodomains => ka.hat_plus(&kb),
                }
            }
            RelExpr::Join(a, b) => a.inferred_cardinality(g).join(&b.inferred_cardinality(g)),
            RelExpr::Collateral(a, b) => a
                .inferred_cardinality(g)
                .collateral(&b.inferred_cardinality(g)),
        }
    }

    /// The inverse cardinality — defined for atomics (the reverse
    /// reading) and joins (Lemma 3's second formula).
    pub fn inferred_inverse_cardinality(&self, g: &Csg) -> Option<Cardinality> {
        match self {
            RelExpr::Atomic(r) => Some(g.card_of(r.reverse()).clone()),
            RelExpr::Join(a, b) => Some(
                a.inferred_cardinality(g)
                    .join_inverse(&b.inferred_cardinality(g)),
            ),
            RelExpr::Compose(a, b) => {
                // (ρ₁∘ρ₂)⁻¹ = ρ₂⁻¹ ∘ ρ₁⁻¹
                let ia = a.inferred_inverse_cardinality(g)?;
                let ib = b.inferred_inverse_cardinality(g)?;
                Some(ib.compose(&ia))
            }
            _ => None,
        }
    }

    /// The width of the domain keys this expression's links carry when
    /// evaluated on any instance:
    ///
    /// * atomics produce singleton keys;
    /// * a composition inherits its left operand's domain;
    /// * joins and collaterals always produce compound keys (`A × B`
    ///   resp. `A × C` domains);
    /// * a union is [`Mixed`](DomainWidth::Mixed) when its branches
    ///   disagree.
    ///
    /// Per-domain-element counting
    /// ([`CsgInstance::link_counts`](crate::instance::CsgInstance::link_counts))
    /// only ever tallies singleton-key links, so a
    /// [`Compound`](DomainWidth::Compound) expression counts zero for
    /// every element — see
    /// [`try_link_counts_ctx`](crate::instance::CsgInstance::try_link_counts_ctx)
    /// for the explicit `None` path.
    pub fn domain_width(&self) -> DomainWidth {
        match self {
            RelExpr::Atomic(_) => DomainWidth::Singleton,
            RelExpr::Compose(a, _) => a.domain_width(),
            RelExpr::Union(a, b, _) => match (a.domain_width(), b.domain_width()) {
                (DomainWidth::Singleton, DomainWidth::Singleton) => DomainWidth::Singleton,
                (DomainWidth::Compound, DomainWidth::Compound) => DomainWidth::Compound,
                _ => DomainWidth::Mixed,
            },
            RelExpr::Join(_, _) | RelExpr::Collateral(_, _) => DomainWidth::Compound,
        }
    }

    /// Number of atomic readings in the expression — the "length" used by
    /// the Occam's-razor tie-break in matching.
    pub fn len(&self) -> usize {
        match self {
            RelExpr::Atomic(_) => 1,
            RelExpr::Compose(a, b)
            | RelExpr::Union(a, b, _)
            | RelExpr::Join(a, b)
            | RelExpr::Collateral(a, b) => a.len() + b.len(),
        }
    }

    /// `true` iff the expression contains no atomic readings — never the
    /// case for expressions built by this crate, but required by clippy's
    /// `len-without-is-empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Start node of a composition chain (leftmost atomic's start).
    pub fn start(&self, g: &Csg) -> Option<NodeId> {
        match self {
            RelExpr::Atomic(r) => Some(g.start_of(*r)),
            RelExpr::Compose(a, _) => a.start(g),
            RelExpr::Union(a, _, _) => a.start(g),
            _ => None,
        }
    }

    /// End node of a composition chain (rightmost atomic's end).
    pub fn end(&self, g: &Csg) -> Option<NodeId> {
        match self {
            RelExpr::Atomic(r) => Some(g.end_of(*r)),
            RelExpr::Compose(_, b) => b.end(g),
            RelExpr::Union(_, b, _) => b.end(g),
            _ => None,
        }
    }

    /// Render the expression with node names, e.g.
    /// `albums→artist_list ∘ id'→artist_list'' ∘ …`.
    pub fn render(&self, g: &Csg) -> String {
        match self {
            RelExpr::Atomic(r) => g.reading_label(*r),
            RelExpr::Compose(a, b) => format!("{} ∘ {}", a.render(g), b.render(g)),
            RelExpr::Union(a, b, _) => format!("({} ∪ {})", a.render(g), b.render(g)),
            RelExpr::Join(a, b) => format!("({} ⋈ {})", a.render(g), b.render(g)),
            RelExpr::Collateral(a, b) => format!("({} ∥ {})", a.render(g), b.render(g)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{NodeKind, RelKind};

    /// Build the source-side chain of Figure 4 that matters for the
    /// records→artist matching example:
    /// albums —(1/0..1)→ artist_list(id') —(0..* / 1)→ artist_credits
    /// —(1/1..*)→ artist.
    fn source_chain() -> (Csg, Vec<RelRef>) {
        let mut g = Csg::new("src");
        let albums = g.add_node("albums", NodeKind::Table);
        let artist_list = g.add_node("artist_list", NodeKind::Attribute);
        let credits = g.add_node("artist_credits", NodeKind::Table);
        let artist = g.add_node("artist", NodeKind::Attribute);
        // albums→artist_list: each album has exactly one artist_list value;
        // each list value belongs to ≥1 albums.
        let r1 = g.add_relationship(
            albums,
            artist_list,
            RelKind::Attribute,
            Cardinality::one(),
            Cardinality::one_or_more(),
        );
        // artist_list→credits (via equality+attribute, collapsed here):
        // a list has 0..* credits; each credit belongs to exactly 1 list.
        let r2 = g.add_relationship(
            artist_list,
            credits,
            RelKind::Equality,
            Cardinality::any(),
            Cardinality::one(),
        );
        // credits→artist: each credit names exactly one artist.
        let r3 = g.add_relationship(
            credits,
            artist,
            RelKind::Attribute,
            Cardinality::one(),
            Cardinality::one_or_more(),
        );
        (
            g,
            vec![RelRef::fwd(r1), RelRef::fwd(r2), RelRef::fwd(r3)],
        )
    }

    #[test]
    fn path_composition_infers_zero_to_many() {
        let (g, steps) = source_chain();
        let expr = RelExpr::path(&steps);
        // 1 ∘ 0..* ∘ 1 = 0..* — the paper's inferred cardinality for
        // albums→artist, which conflicts with the prescribed 1.
        assert_eq!(expr.inferred_cardinality(&g), Cardinality::any());
        assert_eq!(expr.len(), 3);
        assert_eq!(expr.start(&g), g.node_by_name("albums"));
        assert_eq!(expr.end(&g), g.node_by_name("artist"));
    }

    #[test]
    fn inverse_of_composition_reverses() {
        let (g, steps) = source_chain();
        let expr = RelExpr::path(&steps);
        // artist→albums: 1..* ∘ 1 ∘ 1..* = 1..*  …wait: reverse of the
        // chain is artist→credits (1..*), credits→list (1), list→albums
        // (1..*): 1..* ∘ 1 ∘ 1..* = 1..*.
        let inv = expr.inferred_inverse_cardinality(&g).unwrap();
        assert_eq!(inv, Cardinality::one_or_more());
    }

    #[test]
    fn join_and_collateral_infer() {
        let (g, steps) = source_chain();
        let a = RelExpr::Atomic(steps[0]);
        let b = RelExpr::Atomic(steps[2]);
        let join = RelExpr::Join(Box::new(a.clone()), Box::new(b.clone()));
        assert_eq!(join.inferred_cardinality(&g), Cardinality::one());
        let coll = RelExpr::Collateral(Box::new(a), Box::new(b));
        assert_eq!(coll.inferred_cardinality(&g), Cardinality::range(0, 1));
    }

    #[test]
    fn union_modes_differ() {
        let (g, steps) = source_chain();
        let a = RelExpr::Atomic(steps[0]); // card 1
        let union_disjoint = RelExpr::Union(
            Box::new(a.clone()),
            Box::new(a.clone()),
            UnionMode::DisjointDomains,
        );
        assert_eq!(union_disjoint.inferred_cardinality(&g), Cardinality::one());
        let union_sum = RelExpr::Union(
            Box::new(a.clone()),
            Box::new(a.clone()),
            UnionMode::EqualDomainsDisjointCodomains,
        );
        assert_eq!(union_sum.inferred_cardinality(&g), Cardinality::exactly(2));
        let union_hat = RelExpr::Union(
            Box::new(a.clone()),
            Box::new(a),
            UnionMode::EqualDomainsOverlappingCodomains,
        );
        assert_eq!(
            union_hat.inferred_cardinality(&g),
            Cardinality::range(1, 2)
        );
    }

    #[test]
    fn render_is_readable() {
        let (g, steps) = source_chain();
        let expr = RelExpr::path(&steps[..2]);
        assert_eq!(
            expr.render(&g),
            "albums→artist_list ∘ artist_list→artist_credits"
        );
    }
}
