//! Cardinality sets and the inference operators of Lemmas 1–4.
//!
//! The paper defines `κ: P → 2^ℕ`: a cardinality is an arbitrary set of
//! natural numbers. We represent such sets as **normalised unions of
//! integer intervals** (sorted, disjoint, non-adjacent), with `None` as an
//! upper bound meaning unbounded (`*`). This is exact for every
//! cardinality the paper's lemmas can produce from interval-shaped inputs,
//! and closed under all four operators.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One maximal run `lo..=hi` of naturals; `hi == None` means unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound; `None` = `*`.
    pub hi: Option<u64>,
}

impl Interval {
    fn contains(&self, n: u64) -> bool {
        n >= self.lo && self.hi.is_none_or(|h| n <= h)
    }

    /// `true` iff `self ⊆ other`.
    fn is_subset(&self, other: &Interval) -> bool {
        self.lo >= other.lo
            && match (self.hi, other.hi) {
                (_, None) => true,
                (None, Some(_)) => false,
                (Some(a), Some(b)) => a <= b,
            }
    }

    /// Merge if overlapping or adjacent; `None` if disjoint with a gap.
    fn merge(&self, other: &Interval) -> Option<Interval> {
        let (a, b) = if self.lo <= other.lo {
            (self, other)
        } else {
            (other, self)
        };
        let a_hi_plus = match a.hi {
            None => return Some(Interval { lo: a.lo, hi: None }),
            Some(h) => h.saturating_add(1),
        };
        if b.lo <= a_hi_plus {
            Some(Interval {
                lo: a.lo,
                hi: match (a.hi, b.hi) {
                    (None, _) | (_, None) => None,
                    (Some(x), Some(y)) => Some(x.max(y)),
                },
            })
        } else {
            None
        }
    }
}

/// A cardinality: a (possibly empty) set of naturals as normalised
/// intervals.
///
/// The paper writes `1`, `0..1`, `1..*`, `0..*` etc.; [`fmt::Display`]
/// uses the same notation.
///
/// ```
/// use efes_csg::Cardinality;
///
/// // Lemma 1: composing a nullable step with a to-many step.
/// let k = Cardinality::zero_or_one().compose(&Cardinality::one_or_more());
/// assert_eq!(k.to_string(), "0..*");
///
/// // The conciseness order of §4.1 is the subset relation.
/// assert!(Cardinality::one().is_strict_subset(&k));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cardinality {
    intervals: Vec<Interval>,
}

impl Cardinality {
    /// The empty cardinality `∅` (Lemma 3 produces it for `m = 0`).
    pub fn empty() -> Self {
        Cardinality { intervals: vec![] }
    }

    /// The singleton `{n}`.
    pub fn exactly(n: u64) -> Self {
        Cardinality {
            intervals: vec![Interval {
                lo: n,
                hi: Some(n),
            }],
        }
    }

    /// The bounded range `lo..hi` (inclusive). Panics if `lo > hi`.
    pub fn range(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "invalid cardinality range {lo}..{hi}");
        Cardinality {
            intervals: vec![Interval { lo, hi: Some(hi) }],
        }
    }

    /// The unbounded range `lo..*`.
    pub fn at_least(lo: u64) -> Self {
        Cardinality {
            intervals: vec![Interval { lo, hi: None }],
        }
    }

    /// `1` — exactly one.
    pub fn one() -> Self {
        Self::exactly(1)
    }

    /// `0..1` — at most one.
    pub fn zero_or_one() -> Self {
        Self::range(0, 1)
    }

    /// `1..*` — at least one.
    pub fn one_or_more() -> Self {
        Self::at_least(1)
    }

    /// `0..*` — anything.
    pub fn any() -> Self {
        Self::at_least(0)
    }

    /// Build from explicit intervals (normalising).
    pub fn from_intervals(intervals: impl IntoIterator<Item = (u64, Option<u64>)>) -> Self {
        let mut c = Cardinality {
            intervals: intervals
                .into_iter()
                .map(|(lo, hi)| Interval { lo, hi })
                .collect(),
        };
        c.normalise();
        c
    }

    fn normalise(&mut self) {
        self.intervals
            .retain(|iv| iv.hi.is_none_or(|h| h >= iv.lo));
        self.intervals.sort_by_key(|iv| iv.lo);
        let mut merged: Vec<Interval> = Vec::with_capacity(self.intervals.len());
        for iv in self.intervals.drain(..) {
            if let Some(last) = merged.last_mut() {
                if let Some(m) = last.merge(&iv) {
                    *last = m;
                    continue;
                }
            }
            merged.push(iv);
        }
        self.intervals = merged;
    }

    /// `true` iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// `true` iff `n ∈ κ`.
    pub fn contains(&self, n: u64) -> bool {
        self.intervals.iter().any(|iv| iv.contains(n))
    }

    /// Smallest element, or `None` for the empty set.
    pub fn min(&self) -> Option<u64> {
        self.intervals.first().map(|iv| iv.lo)
    }

    /// Largest element: `Some(Some(n))` for bounded, `Some(None)` for
    /// unbounded, `None` for the empty set (the paper's `⊥`).
    pub fn max(&self) -> Option<Option<u64>> {
        self.intervals.last().map(|iv| iv.hi)
    }

    /// `true` iff `self ⊆ other`.
    pub fn is_subset(&self, other: &Cardinality) -> bool {
        self.intervals
            .iter()
            .all(|iv| other.intervals.iter().any(|o| iv.is_subset(o)))
    }

    /// `true` iff `self ⊂ other` — the *strictly more specific than*
    /// relation behind the paper's conciseness order.
    pub fn is_strict_subset(&self, other: &Cardinality) -> bool {
        self != other && self.is_subset(other)
    }

    /// Set union `κ₁ ∪ κ₂` (Lemma 2, disjoint-domain case).
    pub fn union(&self, other: &Cardinality) -> Cardinality {
        let mut c = Cardinality {
            intervals: self
                .intervals
                .iter()
                .chain(other.intervals.iter())
                .copied()
                .collect(),
        };
        c.normalise();
        c
    }

    /// Set intersection (used for constraint tightening).
    pub fn intersect(&self, other: &Cardinality) -> Cardinality {
        let mut out = Vec::new();
        for a in &self.intervals {
            for b in &other.intervals {
                let lo = a.lo.max(b.lo);
                let hi = match (a.hi, b.hi) {
                    (None, None) => None,
                    (Some(x), None) => Some(x),
                    (None, Some(y)) => Some(y),
                    (Some(x), Some(y)) => Some(x.min(y)),
                };
                if hi.is_none_or(|h| lo <= h) {
                    out.push(Interval { lo, hi });
                }
            }
        }
        let mut c = Cardinality { intervals: out };
        c.normalise();
        c
    }

    /// **Lemma 1** — composition:
    /// `κ(ρ₁ ∘ ρ₂) = (sgn a₁ · a₂)..(b₁ · b₂)` per interval pair, where
    /// `sgn 0 = 0` and `sgn n = 1` for `n > 0`, and `b·* = *` except
    /// `0·* = 0`.
    pub fn compose(&self, other: &Cardinality) -> Cardinality {
        if self.is_empty() || other.is_empty() {
            return Cardinality::empty();
        }
        let mut out = Vec::new();
        for a in &self.intervals {
            for b in &other.intervals {
                let lo = if a.lo == 0 { 0 } else { b.lo };
                let hi = match (a.hi, b.hi) {
                    (Some(0), _) => Some(0),
                    (_, Some(0)) => Some(0),
                    (None, _) | (_, None) => None,
                    (Some(x), Some(y)) => Some(x.saturating_mul(y)),
                };
                // The product set of two intervals is itself an interval
                // hull here — exact for the lemma's statement.
                out.push(Interval { lo, hi });
            }
        }
        let mut c = Cardinality { intervals: out };
        c.normalise();
        c
    }

    /// **Lemma 2**, equal-domains/disjoint-codomains case:
    /// `κ₁ + κ₂ = {a + b : a ∈ κ₁ ∧ b ∈ κ₂}` (Minkowski sum).
    pub fn plus(&self, other: &Cardinality) -> Cardinality {
        if self.is_empty() || other.is_empty() {
            return Cardinality::empty();
        }
        let mut out = Vec::new();
        for a in &self.intervals {
            for b in &other.intervals {
                out.push(Interval {
                    lo: a.lo + b.lo,
                    hi: match (a.hi, b.hi) {
                        (Some(x), Some(y)) => Some(x.saturating_add(y)),
                        _ => None,
                    },
                });
            }
        }
        let mut c = Cardinality { intervals: out };
        c.normalise();
        c
    }

    /// **Lemma 2**, overlapping-codomains case:
    /// `κ₁ +̂ κ₂ = {c : a ∈ κ₁ ∧ b ∈ κ₂ ∧ max(a,b) ≤ c ≤ a + b}`.
    pub fn hat_plus(&self, other: &Cardinality) -> Cardinality {
        if self.is_empty() || other.is_empty() {
            return Cardinality::empty();
        }
        let mut out = Vec::new();
        for a in &self.intervals {
            for b in &other.intervals {
                out.push(Interval {
                    lo: a.lo.max(b.lo),
                    hi: match (a.hi, b.hi) {
                        (Some(x), Some(y)) => Some(x.saturating_add(y)),
                        _ => None,
                    },
                });
            }
        }
        let mut c = Cardinality { intervals: out };
        c.normalise();
        c
    }

    /// **Lemma 3** — join cardinality: with
    /// `m = min{max κ₁, max κ₂}` (where the max of an unbounded set is
    /// `*`),
    /// `κ(ρ₁ ⋈ ρ₂) = ∅ if m = 0 ∨ m = ⊥, else 1..m`.
    pub fn join(&self, other: &Cardinality) -> Cardinality {
        let (Some(a), Some(b)) = (self.max(), other.max()) else {
            return Cardinality::empty(); // m = ⊥ (one side empty)
        };
        let m = match (a, b) {
            (None, None) => None,
            (Some(x), None) => Some(x),
            (None, Some(y)) => Some(y),
            (Some(x), Some(y)) => Some(x.min(y)),
        };
        match m {
            Some(0) => Cardinality::empty(),
            Some(n) => Cardinality::range(1, n),
            None => Cardinality::at_least(1),
        }
    }

    /// **Lemma 3** — inverse join cardinality:
    /// `(min κ₁ · min κ₂)..(max κ₁ · max κ₂)`.
    pub fn join_inverse(&self, other: &Cardinality) -> Cardinality {
        let (Some(lo1), Some(lo2)) = (self.min(), other.min()) else {
            return Cardinality::empty();
        };
        let (Some(hi1), Some(hi2)) = (self.max(), other.max()) else {
            return Cardinality::empty();
        };
        let lo = lo1.saturating_mul(lo2);
        let hi = match (hi1, hi2) {
            (Some(0), _) | (_, Some(0)) => Some(0),
            (Some(x), Some(y)) => Some(x.saturating_mul(y)),
            _ => None,
        };
        Cardinality {
            intervals: vec![Interval { lo, hi }],
        }
    }

    /// **Lemma 4** — collateral: `κ(ρ₁ ∥ ρ₂) = 0..(max κ₁ · max κ₂)`.
    pub fn collateral(&self, other: &Cardinality) -> Cardinality {
        let (Some(a), Some(b)) = (self.max(), other.max()) else {
            return Cardinality::empty();
        };
        let hi = match (a, b) {
            (Some(0), _) | (_, Some(0)) => Some(0),
            (Some(x), Some(y)) => Some(x.saturating_mul(y)),
            _ => None,
        };
        Cardinality {
            intervals: vec![Interval { lo: 0, hi }],
        }
    }

    /// Interval hull `min..max` — used when a single summary interval is
    /// needed (e.g. for the virtual-instance actual cardinalities).
    pub fn hull(&self) -> Cardinality {
        match (self.min(), self.max()) {
            (Some(lo), Some(hi)) => Cardinality {
                intervals: vec![Interval { lo, hi }],
            },
            _ => Cardinality::empty(),
        }
    }

    /// Enumerate the elements up to `limit` — for brute-force checking in
    /// tests only.
    pub fn enumerate_up_to(&self, limit: u64) -> Vec<u64> {
        (0..=limit).filter(|n| self.contains(*n)).collect()
    }
}

impl fmt::Display for Cardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.intervals.is_empty() {
            return write!(f, "∅");
        }
        let parts: Vec<String> = self
            .intervals
            .iter()
            .map(|iv| match iv.hi {
                Some(h) if h == iv.lo => format!("{}", iv.lo),
                Some(h) => format!("{}..{}", iv.lo, h),
                None => format!("{}..*", iv.lo),
            })
            .collect();
        write!(f, "{}", parts.join("|"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(Cardinality::one().to_string(), "1");
        assert_eq!(Cardinality::zero_or_one().to_string(), "0..1");
        assert_eq!(Cardinality::one_or_more().to_string(), "1..*");
        assert_eq!(Cardinality::any().to_string(), "0..*");
        assert_eq!(Cardinality::empty().to_string(), "∅");
    }

    #[test]
    fn normalisation_merges_adjacent_intervals() {
        let c = Cardinality::from_intervals([(0, Some(1)), (2, Some(3))]);
        assert_eq!(c, Cardinality::range(0, 3));
        let gap = Cardinality::from_intervals([(0, Some(1)), (3, Some(4))]);
        assert_eq!(gap.to_string(), "0..1|3..4");
    }

    #[test]
    fn subset_relation() {
        assert!(Cardinality::one().is_subset(&Cardinality::zero_or_one()));
        assert!(Cardinality::one().is_subset(&Cardinality::one_or_more()));
        assert!(Cardinality::zero_or_one().is_subset(&Cardinality::any()));
        assert!(!Cardinality::any().is_subset(&Cardinality::one_or_more()));
        assert!(Cardinality::one().is_strict_subset(&Cardinality::any()));
        assert!(!Cardinality::one().is_strict_subset(&Cardinality::one()));
    }

    #[test]
    fn lemma1_composition_examples() {
        // 1 ∘ 1 = 1
        assert_eq!(
            Cardinality::one().compose(&Cardinality::one()),
            Cardinality::one()
        );
        // 0..1 ∘ 1..* = 0..*
        assert_eq!(
            Cardinality::zero_or_one().compose(&Cardinality::one_or_more()),
            Cardinality::any()
        );
        // 1..* ∘ 1 = 1..*
        assert_eq!(
            Cardinality::one_or_more().compose(&Cardinality::one()),
            Cardinality::one_or_more()
        );
        // 2..3 ∘ 4..5 = 4..15 (sgn 2 · 4 = 4, 3·5 = 15)
        assert_eq!(
            Cardinality::range(2, 3).compose(&Cardinality::range(4, 5)),
            Cardinality::range(4, 15)
        );
        // 0 ∘ anything = 0
        assert_eq!(
            Cardinality::exactly(0).compose(&Cardinality::one_or_more()),
            Cardinality::exactly(0)
        );
    }

    #[test]
    fn paper_path_inference_is_zero_to_many() {
        // The example in §4.1: both candidate paths for records→artist
        // infer 0..* — e.g. 1 ∘ 1..* ∘ 1 ∘ 0..* … Let's verify a chain
        // albums→artist_list (1) ∘ id'→artist_list'' (0..*) ∘
        // artist_credits→artist (1) gives 0..*.
        let inferred = Cardinality::one()
            .compose(&Cardinality::any())
            .compose(&Cardinality::one());
        assert_eq!(inferred, Cardinality::any());
    }

    #[test]
    fn lemma2_union_variants() {
        let a = Cardinality::exactly(1);
        let b = Cardinality::exactly(2);
        // Disjoint domains: set union.
        assert_eq!(a.union(&b).to_string(), "1..2");
        // Equal domains, disjoint codomains: Minkowski sum.
        assert_eq!(a.plus(&b), Cardinality::exactly(3));
        // Overlapping codomains: max(a,b)..a+b.
        assert_eq!(a.hat_plus(&b), Cardinality::range(2, 3));
    }

    #[test]
    fn lemma2_hat_plus_brute_force() {
        let k1 = Cardinality::range(1, 3);
        let k2 = Cardinality::range(2, 4);
        let result = k1.hat_plus(&k2);
        // {c : a∈1..3, b∈2..4, max(a,b) ≤ c ≤ a+b} = 2..7
        assert_eq!(result, Cardinality::range(2, 7));
    }

    #[test]
    fn lemma3_join() {
        let a = Cardinality::range(0, 3);
        let b = Cardinality::at_least(1);
        assert_eq!(a.join(&b), Cardinality::range(1, 3));
        // m = 0 → empty
        assert_eq!(
            Cardinality::exactly(0).join(&b),
            Cardinality::empty()
        );
        // empty side → ⊥ → empty
        assert_eq!(Cardinality::empty().join(&b), Cardinality::empty());
        // both unbounded → 1..*
        assert_eq!(
            Cardinality::any().join(&Cardinality::any()),
            Cardinality::one_or_more()
        );
    }

    #[test]
    fn lemma3_join_inverse() {
        let a = Cardinality::range(1, 2);
        let b = Cardinality::range(3, 4);
        assert_eq!(a.join_inverse(&b), Cardinality::range(3, 8));
        let u = Cardinality::at_least(2);
        assert_eq!(a.join_inverse(&u), Cardinality::at_least(2));
    }

    #[test]
    fn lemma4_collateral() {
        let a = Cardinality::range(1, 2);
        let b = Cardinality::range(1, 3);
        assert_eq!(a.collateral(&b), Cardinality::range(0, 6));
        assert_eq!(
            a.collateral(&Cardinality::any()),
            Cardinality::any()
        );
    }

    #[test]
    fn intersect_examples() {
        let a = Cardinality::range(0, 5);
        let b = Cardinality::at_least(3);
        assert_eq!(a.intersect(&b), Cardinality::range(3, 5));
        assert_eq!(
            Cardinality::one().intersect(&Cardinality::exactly(2)),
            Cardinality::empty()
        );
    }

    #[test]
    fn min_max_and_bottom() {
        assert_eq!(Cardinality::empty().max(), None);
        assert_eq!(Cardinality::any().max(), Some(None));
        assert_eq!(Cardinality::range(2, 7).max(), Some(Some(7)));
        assert_eq!(Cardinality::range(2, 7).min(), Some(2));
    }

    #[test]
    fn hull_summarises() {
        let c = Cardinality::from_intervals([(0, Some(1)), (5, Some(9))]);
        assert_eq!(c.hull(), Cardinality::range(0, 9));
    }
}
