//! CSG graphs: nodes, relationships, prescribed cardinalities.

use crate::cardinality::Cardinality;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node within its [`Csg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Index of a relationship within its [`Csg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelId(pub usize);

/// What a node represents.
///
/// Definition 1 only requires a set of nodes; the rectangle/round-shape
/// distinction of Figure 4 (table vs attribute nodes) is what conversion
/// from the relational model produces and what the repair planner keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Holds abstract tuple identities (rectangles in Figure 4).
    Table,
    /// Holds the distinct values of an attribute (round shapes).
    Attribute,
}

/// A CSG node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Display name, e.g. `tracks` or `duration`.
    pub name: String,
    /// Table or attribute node.
    pub kind: NodeKind,
}

/// What a relationship represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelKind {
    /// Tuple → attribute-value relationship (solid edges in Figure 4).
    Attribute,
    /// *"Foreign key relationships are represented by special equality
    /// relationships (dashed line) that link all equal elements of two
    /// nodes."*
    Equality,
}

/// A relationship `ρ ∈ P ⊂ N²` with prescribed cardinalities for **both**
/// reading directions, as annotated on both edge ends in Figure 4:
/// `card_fwd = κ(ρ_{from→to})`, `card_bwd = κ(ρ_{to→from})`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relationship {
    /// Start node.
    pub from: NodeId,
    /// End node.
    pub to: NodeId,
    /// Attribute or equality relationship.
    pub kind: RelKind,
    /// Prescribed cardinality reading from → to.
    pub card_fwd: Cardinality,
    /// Prescribed cardinality reading to → from.
    pub card_bwd: Cardinality,
}

/// Reading direction of a relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// from → to.
    Forward,
    /// to → from.
    Backward,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

/// A relationship read in a particular direction — the atomic unit of the
/// relationship algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelRef {
    /// The underlying relationship.
    pub rel: RelId,
    /// Reading direction.
    pub dir: Direction,
}

impl RelRef {
    /// Forward reading.
    pub fn fwd(rel: RelId) -> Self {
        RelRef {
            rel,
            dir: Direction::Forward,
        }
    }

    /// Backward reading.
    pub fn bwd(rel: RelId) -> Self {
        RelRef {
            rel,
            dir: Direction::Backward,
        }
    }

    /// The same relationship read the other way.
    pub fn reverse(self) -> Self {
        RelRef {
            rel: self.rel,
            dir: self.dir.reverse(),
        }
    }
}

/// A cardinality-constrained schema graph `Γ = (N, P, κ)` (Definition 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csg {
    /// Graph name (usually the database name).
    pub name: String,
    nodes: Vec<Node>,
    rels: Vec<Relationship>,
}

impl Csg {
    /// An empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Csg {
            name: name.into(),
            nodes: Vec::new(),
            rels: Vec::new(),
        }
    }

    /// Add a node.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        self.nodes.push(Node {
            name: name.into(),
            kind,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Add a relationship with both prescribed cardinalities.
    pub fn add_relationship(
        &mut self,
        from: NodeId,
        to: NodeId,
        kind: RelKind,
        card_fwd: Cardinality,
        card_bwd: Cardinality,
    ) -> RelId {
        self.rels.push(Relationship {
            from,
            to,
            kind,
            card_fwd,
            card_bwd,
        });
        RelId(self.rels.len() - 1)
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All relationships.
    pub fn relationships(&self) -> &[Relationship] {
        &self.rels
    }

    /// Access one node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Access one relationship.
    pub fn relationship(&self, id: RelId) -> &Relationship {
        &self.rels[id.0]
    }

    /// Resolve a node by name (names are unique per conversion; on
    /// collision the first match wins).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// The start node of a directed reading.
    pub fn start_of(&self, r: RelRef) -> NodeId {
        let rel = self.relationship(r.rel);
        match r.dir {
            Direction::Forward => rel.from,
            Direction::Backward => rel.to,
        }
    }

    /// The end node of a directed reading.
    pub fn end_of(&self, r: RelRef) -> NodeId {
        let rel = self.relationship(r.rel);
        match r.dir {
            Direction::Forward => rel.to,
            Direction::Backward => rel.from,
        }
    }

    /// The prescribed cardinality of a directed reading.
    pub fn card_of(&self, r: RelRef) -> &Cardinality {
        let rel = self.relationship(r.rel);
        match r.dir {
            Direction::Forward => &rel.card_fwd,
            Direction::Backward => &rel.card_bwd,
        }
    }

    /// All directed readings leaving `node` (both directions of every
    /// incident relationship), in stable order.
    pub fn readings_from(&self, node: NodeId) -> Vec<RelRef> {
        let mut out = Vec::new();
        for (i, rel) in self.rels.iter().enumerate() {
            if rel.from == node {
                out.push(RelRef::fwd(RelId(i)));
            }
            if rel.to == node {
                out.push(RelRef::bwd(RelId(i)));
            }
        }
        out
    }

    /// Human-readable label of a directed reading, e.g. `tracks→record`.
    pub fn reading_label(&self, r: RelRef) -> String {
        format!(
            "{}→{}",
            self.node(self.start_of(r)).name,
            self.node(self.end_of(r)).name
        )
    }
}

impl fmt::Display for Csg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CSG `{}`: {} nodes, {} relationships", self.name, self.nodes.len(), self.rels.len())?;
        for (i, rel) in self.rels.iter().enumerate() {
            writeln!(
                f,
                "  ρ{}: {} —[{} / {}]— {}{}",
                i,
                self.node(rel.from).name,
                rel.card_fwd,
                rel.card_bwd,
                self.node(rel.to).name,
                if rel.kind == RelKind::Equality { " (=)" } else { "" },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Csg, NodeId, NodeId, RelId) {
        let mut g = Csg::new("g");
        let t = g.add_node("tracks", NodeKind::Table);
        let a = g.add_node("record", NodeKind::Attribute);
        let r = g.add_relationship(
            t,
            a,
            RelKind::Attribute,
            Cardinality::one(),
            Cardinality::one_or_more(),
        );
        (g, t, a, r)
    }

    #[test]
    fn directed_readings() {
        let (g, t, a, r) = tiny();
        assert_eq!(g.start_of(RelRef::fwd(r)), t);
        assert_eq!(g.end_of(RelRef::fwd(r)), a);
        assert_eq!(g.start_of(RelRef::bwd(r)), a);
        assert_eq!(g.card_of(RelRef::fwd(r)), &Cardinality::one());
        assert_eq!(g.card_of(RelRef::bwd(r)), &Cardinality::one_or_more());
        assert_eq!(RelRef::fwd(r).reverse(), RelRef::bwd(r));
    }

    #[test]
    fn readings_from_covers_both_directions() {
        let (g, t, a, _) = tiny();
        assert_eq!(g.readings_from(t).len(), 1);
        assert_eq!(g.readings_from(a).len(), 1);
        assert_eq!(g.reading_label(g.readings_from(t)[0]), "tracks→record");
        assert_eq!(g.reading_label(g.readings_from(a)[0]), "record→tracks");
    }

    #[test]
    fn node_lookup_by_name() {
        let (g, t, _, _) = tiny();
        assert_eq!(g.node_by_name("tracks"), Some(t));
        assert_eq!(g.node_by_name("nope"), None);
    }
}
