//! Matching target relationships to source relationship expressions.
//!
//! Paper §4.1: *"The composition operator particularly allows to treat
//! the matching of target relationships to source relationships as a
//! graph search problem."* For each atomic target relationship whose
//! endpoints are matched into the source graph via correspondences, we
//! enumerate candidate source paths and select the best by the
//! **conciseness order**: a relationship is more concise if its inferred
//! cardinality is a strict subset; on equal cardinalities the shorter
//! path wins (Occam's razor).

use crate::cardinality::Cardinality;
use crate::convert::CsgConversion;
use crate::expr::RelExpr;
use crate::graph::{Csg, NodeId, RelId, RelRef};
use efes_exec::{parallel_map, ExecutionMode};
use efes_relational::{CorrespondenceSet, IntegrationScenario, SourceId};
use std::collections::HashMap;

/// Node-level correspondences: which source node each target node maps
/// to, derived from the scenario's table/attribute correspondences.
#[derive(Debug, Clone, Default)]
pub struct NodeCorrespondences {
    map: HashMap<NodeId, NodeId>,
}

impl NodeCorrespondences {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that target node `target` corresponds to source node
    /// `source`.
    pub fn insert(&mut self, target: NodeId, source: NodeId) {
        self.map.insert(target, source);
    }

    /// Look up the source node for a target node.
    pub fn get(&self, target: NodeId) -> Option<NodeId> {
        self.map.get(&target).copied()
    }

    /// Number of matched nodes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff no nodes are matched.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Build node correspondences from a scenario's relational
    /// correspondences, for one source database.
    pub fn from_scenario(
        scenario: &IntegrationScenario,
        source: SourceId,
        target_conv: &CsgConversion,
        source_conv: &CsgConversion,
    ) -> Self {
        Self::from_correspondences(&scenario.correspondences, source, target_conv, source_conv)
    }

    /// Build node correspondences from a correspondence set directly.
    pub fn from_correspondences(
        correspondences: &CorrespondenceSet,
        source: SourceId,
        target_conv: &CsgConversion,
        source_conv: &CsgConversion,
    ) -> Self {
        let mut nc = NodeCorrespondences::new();
        for (st, tt) in correspondences.table_correspondences(source) {
            nc.insert(target_conv.table_node(tt), source_conv.table_node(st));
        }
        for (sa, ta) in correspondences.attribute_correspondences(source) {
            nc.insert(
                target_conv.attr_node(ta.table, ta.attr),
                source_conv.attr_node(sa.table, sa.attr),
            );
        }
        nc
    }
}

/// The result of matching one target relationship.
#[derive(Debug, Clone)]
pub struct RelationshipMatch {
    /// The matched target relationship (its forward reading).
    pub target: RelRef,
    /// The selected source relationship expression.
    pub source_expr: RelExpr,
    /// Inferred cardinality of `source_expr` (start → end).
    pub inferred_fwd: Cardinality,
    /// Inferred cardinality of the reverse reading.
    pub inferred_bwd: Cardinality,
}

/// Search limits for path enumeration.
#[derive(Debug, Clone, Copy)]
pub struct SearchLimits {
    /// Maximum path length in atomic readings.
    pub max_len: usize,
    /// Maximum number of candidate paths retained per relationship.
    pub max_candidates: usize,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_len: 8,
            max_candidates: 256,
        }
    }
}

/// Enumerate simple paths (no repeated nodes) from `from` to `to` in `g`.
fn enumerate_paths(g: &Csg, from: NodeId, to: NodeId, limits: SearchLimits) -> Vec<Vec<RelRef>> {
    let mut results = Vec::new();
    let mut stack: Vec<RelRef> = Vec::new();
    let mut visited: Vec<NodeId> = vec![from];

    fn dfs(
        g: &Csg,
        current: NodeId,
        to: NodeId,
        limits: SearchLimits,
        stack: &mut Vec<RelRef>,
        visited: &mut Vec<NodeId>,
        results: &mut Vec<Vec<RelRef>>,
    ) {
        if results.len() >= limits.max_candidates {
            return;
        }
        if current == to && !stack.is_empty() {
            results.push(stack.clone());
            return;
        }
        if stack.len() >= limits.max_len {
            return;
        }
        for r in g.readings_from(current) {
            let next = g.end_of(r);
            if visited.contains(&next) {
                continue;
            }
            stack.push(r);
            visited.push(next);
            dfs(g, next, to, limits, stack, visited, results);
            visited.pop();
            stack.pop();
        }
    }

    dfs(g, from, to, limits, &mut stack, &mut visited, &mut results);
    results
}

/// Order two candidate paths by the paper's conciseness criterion.
/// Returns `true` iff `a` is strictly better than `b`.
fn more_concise(g: &Csg, a: &(Vec<RelRef>, Cardinality), b: &(Vec<RelRef>, Cardinality)) -> bool {
    let (pa, ka) = a;
    let (pb, kb) = b;
    if ka.is_strict_subset(kb) {
        return true;
    }
    if kb.is_strict_subset(ka) {
        return false;
    }
    if ka == kb {
        if pa.len() != pb.len() {
            return pa.len() < pb.len();
        }
        // Deterministic final tie-break.
        return render_path(g, pa) < render_path(g, pb);
    }
    // Incomparable cardinalities: prefer the narrower hull, then shorter.
    let width = |k: &Cardinality| -> u128 {
        match (k.min(), k.max()) {
            (Some(lo), Some(Some(hi))) => (hi - lo) as u128,
            (Some(_), Some(None)) => u128::MAX,
            _ => u128::MAX,
        }
    };
    let (wa, wb) = (width(ka), width(kb));
    if wa != wb {
        return wa < wb;
    }
    if pa.len() != pb.len() {
        return pa.len() < pb.len();
    }
    render_path(g, pa) < render_path(g, pb)
}

fn render_path(g: &Csg, p: &[RelRef]) -> String {
    p.iter()
        .map(|r| g.reading_label(*r))
        .collect::<Vec<_>>()
        .join("∘")
}

/// Match one target relationship into the source graph. Returns `None`
/// when an endpoint is unmatched or no path exists.
pub fn match_one(
    target_csg: &Csg,
    source_csg: &Csg,
    corr: &NodeCorrespondences,
    target_rel: RelId,
    limits: SearchLimits,
) -> Option<RelationshipMatch> {
    let target = RelRef::fwd(target_rel);
    let t_start = target_csg.start_of(target);
    let t_end = target_csg.end_of(target);
    let s_start = corr.get(t_start)?;
    let s_end = corr.get(t_end)?;

    let paths = enumerate_paths(source_csg, s_start, s_end, limits);
    if paths.is_empty() {
        return None;
    }
    let mut candidates: Vec<(Vec<RelRef>, Cardinality)> = paths
        .into_iter()
        .map(|p| {
            let k = RelExpr::path(&p).inferred_cardinality(source_csg);
            (p, k)
        })
        .collect();
    candidates.sort_by(|a, b| {
        if more_concise(source_csg, a, b) {
            std::cmp::Ordering::Less
        } else if more_concise(source_csg, b, a) {
            std::cmp::Ordering::Greater
        } else {
            std::cmp::Ordering::Equal
        }
    });
    let (best_path, inferred_fwd) = candidates.into_iter().next()?;
    let reversed: Vec<RelRef> = best_path.iter().rev().map(|r| r.reverse()).collect();
    let inferred_bwd = RelExpr::path(&reversed).inferred_cardinality(source_csg);
    Some(RelationshipMatch {
        target,
        source_expr: RelExpr::path(&best_path),
        inferred_fwd,
        inferred_bwd,
    })
}

/// Match every atomic target relationship into the source graph.
/// Relationships with unmatched endpoints are skipped (they receive no
/// source data and cause no structural conflicts).
pub fn match_relationships(
    target_csg: &Csg,
    source_csg: &Csg,
    corr: &NodeCorrespondences,
) -> Vec<RelationshipMatch> {
    match_relationships_with(target_csg, source_csg, corr, ExecutionMode::from_env())
}

/// Like [`match_relationships`], under an explicit [`ExecutionMode`].
/// Each target relationship is matched independently (the path search
/// reads the graphs but shares no state), so the matches fan out over
/// worker threads; results keep target-relationship order either way.
pub fn match_relationships_with(
    target_csg: &Csg,
    source_csg: &Csg,
    corr: &NodeCorrespondences,
    mode: ExecutionMode,
) -> Vec<RelationshipMatch> {
    let limits = SearchLimits::default();
    let ids: Vec<usize> = (0..target_csg.relationships().len()).collect();
    parallel_map(mode, ids, |i| {
        match_one(target_csg, source_csg, corr, RelId(i), limits)
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::Cardinality;
    use crate::graph::{NodeKind, RelKind};

    /// A miniature of the Figure 4 ambiguity: two paths from `albums` to
    /// `artist`, a short one (via artist_list) and a long one (via songs),
    /// both inferring 0..* — the short one must win.
    fn ambiguous_source() -> (Csg, NodeId, NodeId) {
        let mut g = Csg::new("src");
        let albums = g.add_node("albums", NodeKind::Table);
        let list = g.add_node("albums.artist_list", NodeKind::Attribute);
        let credits = g.add_node("artist_credits", NodeKind::Table);
        let artist = g.add_node("artist_credits.artist", NodeKind::Attribute);
        let songs = g.add_node("songs", NodeKind::Table);
        let album_fk = g.add_node("songs.album", NodeKind::Attribute);

        // Short route: albums → list → credits → artist.
        g.add_relationship(
            albums,
            list,
            RelKind::Attribute,
            Cardinality::one(),
            Cardinality::one(),
        );
        g.add_relationship(
            list,
            credits,
            RelKind::Equality,
            Cardinality::any(),
            Cardinality::one(),
        );
        g.add_relationship(
            credits,
            artist,
            RelKind::Attribute,
            Cardinality::one(),
            Cardinality::one_or_more(),
        );
        // Long route: albums → songs.album (equality) → songs → … back
        // through the list: songs.album equality to albums id.
        g.add_relationship(
            album_fk,
            albums,
            RelKind::Equality,
            Cardinality::one(),
            Cardinality::zero_or_one(),
        );
        g.add_relationship(
            songs,
            album_fk,
            RelKind::Attribute,
            Cardinality::one(),
            Cardinality::one_or_more(),
        );
        g.add_relationship(
            songs,
            list,
            RelKind::Attribute,
            Cardinality::zero_or_one(),
            Cardinality::one_or_more(),
        );
        (g, albums, artist)
    }

    fn target_graph() -> (Csg, RelId, NodeId, NodeId) {
        let mut g = Csg::new("tgt");
        let records = g.add_node("records", NodeKind::Table);
        let artist = g.add_node("records.artist", NodeKind::Attribute);
        let r = g.add_relationship(
            records,
            artist,
            RelKind::Attribute,
            Cardinality::one(),
            Cardinality::one_or_more(),
        );
        (g, r, records, artist)
    }

    #[test]
    fn shortest_path_wins_on_equal_cardinality() {
        let (src, albums, artist) = ambiguous_source();
        let (tgt, rel, records, t_artist) = target_graph();
        let mut corr = NodeCorrespondences::new();
        corr.insert(records, albums);
        corr.insert(t_artist, artist);
        let m = match_one(&tgt, &src, &corr, rel, SearchLimits::default()).unwrap();
        // Both routes infer 0..*; the 3-step route must be selected.
        assert_eq!(m.source_expr.len(), 3);
        assert_eq!(m.inferred_fwd, Cardinality::any());
    }

    #[test]
    fn unmatched_endpoint_yields_none() {
        let (src, albums, _) = ambiguous_source();
        let (tgt, rel, records, _) = target_graph();
        let mut corr = NodeCorrespondences::new();
        corr.insert(records, albums); // artist endpoint unmatched
        assert!(match_one(&tgt, &src, &corr, rel, SearchLimits::default()).is_none());
    }

    #[test]
    fn more_specific_cardinality_beats_shorter_path() {
        // Two routes a→c: direct with 0..*, indirect (2 steps) with 1.
        let mut g = Csg::new("s");
        let a = g.add_node("a", NodeKind::Table);
        let b = g.add_node("b", NodeKind::Attribute);
        let c = g.add_node("c", NodeKind::Attribute);
        g.add_relationship(a, c, RelKind::Attribute, Cardinality::any(), Cardinality::any());
        g.add_relationship(a, b, RelKind::Attribute, Cardinality::one(), Cardinality::one());
        g.add_relationship(b, c, RelKind::Equality, Cardinality::one(), Cardinality::one());

        let mut tgt = Csg::new("t");
        let ta = tgt.add_node("ta", NodeKind::Table);
        let tc = tgt.add_node("tc", NodeKind::Attribute);
        let rel = tgt.add_relationship(
            ta,
            tc,
            RelKind::Attribute,
            Cardinality::one(),
            Cardinality::one_or_more(),
        );
        let mut corr = NodeCorrespondences::new();
        corr.insert(ta, a);
        corr.insert(tc, c);
        let m = match_one(&tgt, &g, &corr, rel, SearchLimits::default()).unwrap();
        assert_eq!(m.inferred_fwd, Cardinality::one());
        assert_eq!(m.source_expr.len(), 2);
    }

    #[test]
    fn bwd_cardinality_is_inferred_from_reversed_path() {
        let (src, albums, artist) = ambiguous_source();
        let (tgt, rel, records, t_artist) = target_graph();
        let mut corr = NodeCorrespondences::new();
        corr.insert(records, albums);
        corr.insert(t_artist, artist);
        let m = match_one(&tgt, &src, &corr, rel, SearchLimits::default()).unwrap();
        // artist→credits (1..*) ∘ credits→list (1) ∘ list→albums (1) = 1..*
        assert_eq!(m.inferred_bwd, Cardinality::one_or_more());
    }

    #[test]
    fn identical_schemas_match_with_exact_cardinalities() {
        let (tgt, rel, records, t_artist) = target_graph();
        let mut corr = NodeCorrespondences::new();
        corr.insert(records, records);
        corr.insert(t_artist, t_artist);
        let m = match_one(&tgt, &tgt, &corr, rel, SearchLimits::default()).unwrap();
        assert_eq!(m.inferred_fwd, Cardinality::one());
        assert_eq!(m.source_expr.len(), 1);
    }
}
