//! Virtual CSG instances: *actual* vs *prescribed* cardinalities and the
//! side-effect simulation of cleaning tasks (paper §4.2, Figure 5).
//!
//! *"In addition to the prescribed cardinalities, the target CSG is
//! annotated with actual cardinalities. [...] those describe the state of
//! the (conceptually) integrated source data. [...] As long as there are
//! actual cardinalities that are not subsets of the prescribed ones, the
//! CSG instance is invalid wrt. its constraints."*

use crate::cardinality::Cardinality;
use crate::convert::CsgConversion;
use crate::graph::{Csg, Direction, NodeId, RelId, RelKind, RelRef};
use crate::matching::RelationshipMatch;
use crate::violations::StructuralConflict;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// How many elements currently violate a reading, split by deviation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AffectedCounts {
    /// Elements with fewer links than prescribed.
    pub too_few: u64,
    /// Elements with more links than prescribed.
    pub too_many: u64,
}

impl AffectedCounts {
    /// Total affected elements.
    pub fn total(&self) -> u64 {
        self.too_few + self.too_many
    }
}

/// A violated reading of the virtual instance.
#[derive(Debug, Clone)]
pub struct VirtualViolation {
    /// The violated reading.
    pub reading: RelRef,
    /// Prescribed cardinality.
    pub prescribed: Cardinality,
    /// Current actual cardinality.
    pub actual: Cardinality,
    /// Element counts behind the violation.
    pub affected: AffectedCounts,
}

/// The virtual CSG: the **target** graph annotated with actual
/// cardinalities describing the conceptually-integrated source data.
#[derive(Debug, Clone)]
pub struct VirtualCsg<'a> {
    csg: &'a Csg,
    /// Actual cardinality per relationship, `[fwd, bwd]`.
    actual: Vec<[Cardinality; 2]>,
    /// Affected element counts per relationship, `[fwd, bwd]`.
    affected: Vec<[AffectedCounts; 2]>,
}

fn slot(dir: Direction) -> usize {
    match dir {
        Direction::Forward => 0,
        Direction::Backward => 1,
    }
}

impl<'a> VirtualCsg<'a> {
    /// Initialise from relationship matches and detected conflicts.
    ///
    /// Readings without a conflict start clean (their actual cardinality
    /// equals the prescription: no observed data violates it); conflicting
    /// readings carry the *observed* cardinality of the source data
    /// (Figure 5a's left-hand annotations) and the offending element
    /// counts.
    pub fn from_conflicts(
        target_conv: &'a CsgConversion,
        matches: &[RelationshipMatch],
        conflicts: &[StructuralConflict],
    ) -> Self {
        let _ = matches; // matches are implied by the conflicts' observations
        let g = &target_conv.csg;
        let n = g.relationships().len();
        let mut actual: Vec<[Cardinality; 2]> = (0..n)
            .map(|i| {
                let r = RelId(i);
                [
                    g.card_of(RelRef::fwd(r)).clone(),
                    g.card_of(RelRef::bwd(r)).clone(),
                ]
            })
            .collect();
        let mut affected = vec![[AffectedCounts::default(); 2]; n];
        for c in conflicts {
            actual[c.target_rel][slot(c.direction)] = c.observed.clone();
            affected[c.target_rel][slot(c.direction)] = AffectedCounts {
                too_few: c.too_few,
                too_many: c.too_many,
            };
        }
        VirtualCsg {
            csg: g,
            actual,
            affected,
        }
    }

    /// Initialise with explicit actual cardinalities (used by tests and
    /// the Figure 5 regeneration, which starts from a drawn state).
    pub fn with_actuals(
        csg: &'a Csg,
        actuals: Vec<(RelId, Cardinality, Cardinality)>,
        affected: Vec<(RelRef, AffectedCounts)>,
    ) -> Self {
        let n = csg.relationships().len();
        let mut actual: Vec<[Cardinality; 2]> = (0..n)
            .map(|i| {
                let r = RelId(i);
                [
                    csg.card_of(RelRef::fwd(r)).clone(),
                    csg.card_of(RelRef::bwd(r)).clone(),
                ]
            })
            .collect();
        for (r, f, b) in actuals {
            actual[r.0] = [f, b];
        }
        let mut aff = vec![[AffectedCounts::default(); 2]; n];
        for (r, c) in affected {
            aff[r.rel.0][slot(r.dir)] = c;
        }
        VirtualCsg {
            csg,
            actual,
            affected: aff,
        }
    }

    /// The underlying target graph. The returned reference borrows the
    /// graph itself (`'a`), not this virtual instance, so callers can keep
    /// it across mutations.
    pub fn graph(&self) -> &'a Csg {
        self.csg
    }

    /// Current actual cardinality of a reading.
    pub fn actual_of(&self, r: RelRef) -> &Cardinality {
        &self.actual[r.rel.0][slot(r.dir)]
    }

    /// Current affected counts of a reading.
    pub fn affected_of(&self, r: RelRef) -> AffectedCounts {
        self.affected[r.rel.0][slot(r.dir)]
    }

    /// Overwrite the actual cardinality of a reading.
    pub fn set_actual(&mut self, r: RelRef, c: Cardinality) {
        self.actual[r.rel.0][slot(r.dir)] = c;
    }

    /// Overwrite the affected counts of a reading.
    pub fn set_affected(&mut self, r: RelRef, a: AffectedCounts) {
        self.affected[r.rel.0][slot(r.dir)] = a;
    }

    /// Add to the affected counts of a reading (side effects accumulate).
    pub fn add_affected(&mut self, r: RelRef, a: AffectedCounts) {
        let cur = &mut self.affected[r.rel.0][slot(r.dir)];
        cur.too_few += a.too_few;
        cur.too_many += a.too_many;
    }

    /// `true` iff the reading's actual cardinality satisfies (is a subset
    /// of) its prescription.
    pub fn is_satisfied(&self, r: RelRef) -> bool {
        self.actual_of(r).is_subset(self.csg.card_of(r))
    }

    /// All current violations, in deterministic order (relationship id,
    /// forward before backward) — this fixed order is what makes the
    /// repair plans reproducible.
    pub fn violations(&self) -> Vec<VirtualViolation> {
        let mut out = Vec::new();
        for i in 0..self.csg.relationships().len() {
            for dir in [Direction::Forward, Direction::Backward] {
                let r = RelRef {
                    rel: RelId(i),
                    dir,
                };
                if !self.is_satisfied(r) {
                    out.push(VirtualViolation {
                        reading: r,
                        prescribed: self.csg.card_of(r).clone(),
                        actual: self.actual_of(r).clone(),
                        affected: self.affected_of(r),
                    });
                }
            }
        }
        out
    }

    /// `true` iff no violations remain — the simulation's stop condition.
    pub fn is_clean(&self) -> bool {
        self.violations().is_empty()
    }

    /// The table node a relationship hangs off (the `from` side for
    /// attribute relationships).
    pub fn owning_table(&self, rel: RelId) -> Option<NodeId> {
        let r = self.csg.relationship(rel);
        if r.kind == RelKind::Attribute {
            Some(r.from)
        } else {
            None
        }
    }

    /// All *other* attribute relationships of the same table node — the
    /// candidates for side effects when tuples are created or merged.
    pub fn sibling_attribute_rels(&self, rel: RelId) -> Vec<RelId> {
        let Some(table) = self.owning_table(rel) else {
            return Vec::new();
        };
        self.csg
            .relationships()
            .iter()
            .enumerate()
            .filter(|(i, r)| {
                RelId(*i) != rel && r.kind == RelKind::Attribute && r.from == table
            })
            .map(|(i, _)| RelId(i))
            .collect()
    }

    /// The attribute relationship that *ends* in `node` (used to cascade
    /// from equality relationships into the referenced attribute).
    pub fn attribute_rel_into(&self, node: NodeId) -> Option<RelId> {
        self.csg
            .relationships()
            .iter()
            .position(|r| r.kind == RelKind::Attribute && r.to == node)
            .map(RelId)
    }

    /// Hash of the full state (actual cardinalities + affected counts) —
    /// the planner's cycle detector keys on this.
    pub fn state_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.actual.hash(&mut h);
        self.affected.hash(&mut h);
        h.finish()
    }

    /// Render the per-relationship `actual ⊆/⊄ prescribed` annotations —
    /// the textual equivalent of a Figure 5 panel.
    pub fn describe_state(&self) -> String {
        let mut s = String::new();
        for i in 0..self.csg.relationships().len() {
            for dir in [Direction::Forward, Direction::Backward] {
                let r = RelRef {
                    rel: RelId(i),
                    dir,
                };
                let actual = self.actual_of(r);
                let prescribed = self.csg.card_of(r);
                if actual == prescribed && self.is_satisfied(r) {
                    continue; // uninteresting
                }
                let symbol = if self.is_satisfied(r) { "⊆" } else { "⊄" };
                s.push_str(&format!(
                    "  {}: {} {} {}\n",
                    self.csg.reading_label(r),
                    actual,
                    symbol,
                    prescribed
                ));
            }
        }
        if s.is_empty() {
            s.push_str("  (all actual cardinalities satisfy their prescriptions)\n");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    /// The Figure 5 extract: records with artist (1), title (1),
    /// gen[re] (1..*) attributes.
    fn records_graph() -> (Csg, RelId, RelId, RelId) {
        let mut g = Csg::new("tgt");
        let records = g.add_node("records", NodeKind::Table);
        let artist = g.add_node("artist", NodeKind::Attribute);
        let title = g.add_node("title", NodeKind::Attribute);
        let gen = g.add_node("gen", NodeKind::Attribute);
        let ra = g.add_relationship(
            records,
            artist,
            RelKind::Attribute,
            Cardinality::one(),
            Cardinality::one_or_more(),
        );
        let rt = g.add_relationship(
            records,
            title,
            RelKind::Attribute,
            Cardinality::one(),
            Cardinality::one_or_more(),
        );
        let rg = g.add_relationship(
            records,
            gen,
            RelKind::Attribute,
            Cardinality::one(),
            Cardinality::one_or_more(),
        );
        (g, ra, rt, rg)
    }

    #[test]
    fn figure5a_initial_state() {
        let (g, ra, rt, _rg) = records_graph();
        // Figure 5a: records→artist actual 1..* ⊄ 1; artist→records
        // actual 0..* ⊄ 1..*; title satisfied.
        let v = VirtualCsg::with_actuals(
            &g,
            vec![(
                ra,
                Cardinality::one_or_more(),
                Cardinality::any(),
            )],
            vec![
                (RelRef::fwd(ra), AffectedCounts { too_few: 0, too_many: 503 }),
                (RelRef::bwd(ra), AffectedCounts { too_few: 102, too_many: 0 }),
            ],
        );
        assert!(!v.is_clean());
        let viols = v.violations();
        assert_eq!(viols.len(), 2);
        assert_eq!(viols[0].reading, RelRef::fwd(ra));
        assert_eq!(viols[0].affected.too_many, 503);
        assert_eq!(viols[1].reading, RelRef::bwd(ra));
        assert!(v.is_satisfied(RelRef::fwd(rt)));
    }

    #[test]
    fn figure5b_add_tuples_side_effect() {
        let (g, ra, rt, rg) = records_graph();
        let mut v = VirtualCsg::with_actuals(
            &g,
            vec![(ra, Cardinality::one(), Cardinality::any())],
            vec![(RelRef::bwd(ra), AffectedCounts { too_few: 102, too_many: 0 })],
        );
        // Simulate "Add new tuples for records": artist→records becomes
        // 1..*, records→title becomes 0..1 (new violation).
        v.set_actual(RelRef::bwd(ra), Cardinality::one_or_more());
        v.set_affected(RelRef::bwd(ra), AffectedCounts::default());
        v.set_actual(RelRef::fwd(rt), Cardinality::zero_or_one());
        v.add_affected(RelRef::fwd(rt), AffectedCounts { too_few: 102, too_many: 0 });
        let viols = v.violations();
        assert_eq!(viols.len(), 1);
        assert_eq!(viols[0].reading, RelRef::fwd(rt));
        assert_eq!(viols[0].affected.too_few, 102);
        let _ = rg;
    }

    #[test]
    fn sibling_relationships_found() {
        let (g, ra, rt, rg) = records_graph();
        let conv_free = VirtualCsg::with_actuals(&g, vec![], vec![]);
        let sibs = conv_free.sibling_attribute_rels(ra);
        assert_eq!(sibs, vec![rt, rg]);
    }

    #[test]
    fn state_hash_distinguishes_states() {
        let (g, ra, _, _) = records_graph();
        let clean = VirtualCsg::with_actuals(&g, vec![], vec![]);
        let dirty = VirtualCsg::with_actuals(
            &g,
            vec![(ra, Cardinality::any(), Cardinality::any())],
            vec![],
        );
        assert_ne!(clean.state_hash(), dirty.state_hash());
        assert!(clean.is_clean());
    }

    #[test]
    fn describe_state_renders_subset_symbols() {
        let (g, ra, _, _) = records_graph();
        let v = VirtualCsg::with_actuals(
            &g,
            vec![(ra, Cardinality::one_or_more(), Cardinality::any())],
            vec![],
        );
        let s = v.describe_state();
        assert!(s.contains("⊄"), "{s}");
        assert!(s.contains("records→artist"));
    }
}
