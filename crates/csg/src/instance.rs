//! CSG instances `I(Γ) = (I_N, I_P)` (Definition 2) and expression
//! evaluation over them.

use crate::expr::RelExpr;
use crate::graph::{Csg, Direction, NodeId, RelId, RelRef};
use efes_exec::{Cancelled, Checkpoint, RunContext};
use efes_relational::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// An element of a node's extension: an abstract tuple identity for table
/// nodes, a concrete value for attribute nodes (paper Example 4.1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Element {
    /// Abstract identity `id_t` of a tuple.
    Tuple(usize),
    /// A concrete attribute value.
    Val(Value),
}

/// Key of an element (or, for join/collateral results, an element tuple)
/// inside the evaluation machinery: per-node element indices.
pub type Key = Vec<u32>;

/// A set of links, each connecting a (possibly compound) domain key to a
/// (possibly compound) codomain key. `BTreeSet` keeps evaluation
/// deterministic.
pub type LinkSet = BTreeSet<(Key, Key)>;

/// A CSG instance: element sets `I_N` per node and link sets `I_P` per
/// relationship.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsgInstance {
    /// `I_N`: elements per node, indexed by `NodeId`.
    node_elements: Vec<Vec<Element>>,
    /// Reverse lookup element → index, per node.
    #[serde(skip)]
    elem_index: Vec<HashMap<Element, u32>>,
    /// `I_P`: links per relationship as (from-element-index,
    /// to-element-index) pairs, indexed by `RelId`.
    links: Vec<Vec<(u32, u32)>>,
}

impl CsgInstance {
    /// An empty instance shaped for `g`.
    pub fn empty(g: &Csg) -> Self {
        CsgInstance {
            node_elements: vec![Vec::new(); g.nodes().len()],
            elem_index: vec![HashMap::new(); g.nodes().len()],
            links: vec![Vec::new(); g.relationships().len()],
        }
    }

    /// Add an element to a node (idempotent); returns its index.
    pub fn add_element(&mut self, node: NodeId, elem: Element) -> u32 {
        if let Some(idx) = self.elem_index[node.0].get(&elem) {
            return *idx;
        }
        let idx = self.node_elements[node.0].len() as u32;
        self.node_elements[node.0].push(elem.clone());
        self.elem_index[node.0].insert(elem, idx);
        idx
    }

    /// Look up an element's index without inserting.
    pub fn element_index(&self, node: NodeId, elem: &Element) -> Option<u32> {
        self.elem_index[node.0].get(elem).copied()
    }

    /// Add a link to a relationship, by element indices.
    pub fn add_link(&mut self, rel: RelId, from_idx: u32, to_idx: u32) {
        self.links[rel.0].push((from_idx, to_idx));
    }

    /// The elements of one node.
    pub fn elements(&self, node: NodeId) -> &[Element] {
        &self.node_elements[node.0]
    }

    /// Number of elements of one node.
    pub fn element_count(&self, node: NodeId) -> usize {
        self.node_elements[node.0].len()
    }

    /// The raw links of one relationship.
    pub fn links_of(&self, rel: RelId) -> &[(u32, u32)] {
        &self.links[rel.0]
    }

    /// The links of a directed reading as a [`LinkSet`] of singleton keys.
    pub fn reading_links(&self, r: RelRef) -> LinkSet {
        self.links[r.rel.0]
            .iter()
            .map(|(f, t)| match r.dir {
                Direction::Forward => (vec![*f], vec![*t]),
                Direction::Backward => (vec![*t], vec![*f]),
            })
            .collect()
    }

    /// Evaluate a relationship expression to its link set, per the
    /// operator definitions of §4.1:
    ///
    /// * `I_P(ρ₁ ∘ ρ₂) = I_P(ρ₁) ∘ I_P(ρ₂)` (relation composition),
    /// * `I_P(ρ₁ ∪ ρ₂) = I_P(ρ₁) ∪ I_P(ρ₂)`,
    /// * `I_P(ρ₁ ⋈ ρ₂) = {((a,b),c) : (a,c) ∈ I_P(ρ₁) ∧ (b,c) ∈ I_P(ρ₂)}`,
    /// * `I_P(ρ₁ ∥ ρ₂) = {((a,c),(b,d)) : (a,b) ∈ I_P(ρ₁) ∧ (c,d) ∈
    ///   I_P(ρ₂)}`.
    pub fn eval(&self, expr: &RelExpr) -> LinkSet {
        let run = RunContext::unbounded();
        let ck = run.checkpoint();
        self.eval_ctx(expr, &ck)
            .expect("unbounded context never cancels")
    }

    /// Like [`eval`](Self::eval), but cancellable: link materialisation
    /// loops tick `ck` and abort with [`Cancelled`] when the owning run
    /// is cancelled. The evaluation is the dominant cost of conflict
    /// detection at scale, so this is where deadline expiry actually
    /// interrupts a running structure stage.
    pub fn eval_ctx(&self, expr: &RelExpr, ck: &Checkpoint<'_>) -> Result<LinkSet, Cancelled> {
        match expr {
            RelExpr::Atomic(r) => {
                let mut out = LinkSet::new();
                for (f, t) in &self.links[r.rel.0] {
                    ck.tick()?;
                    out.insert(match r.dir {
                        Direction::Forward => (vec![*f], vec![*t]),
                        Direction::Backward => (vec![*t], vec![*f]),
                    });
                }
                Ok(out)
            }
            RelExpr::Compose(a, b) => {
                let la = self.eval_ctx(a, ck)?;
                let lb = self.eval_ctx(b, ck)?;
                let mut by_domain: HashMap<&Key, Vec<&Key>> = HashMap::new();
                for (f, t) in &lb {
                    ck.tick()?;
                    by_domain.entry(f).or_default().push(t);
                }
                let mut out = LinkSet::new();
                for (f, mid) in &la {
                    ck.tick()?;
                    if let Some(tails) = by_domain.get(mid) {
                        for t in tails {
                            ck.tick()?;
                            out.insert((f.clone(), (*t).clone()));
                        }
                    }
                }
                Ok(out)
            }
            RelExpr::Union(a, b, _) => {
                let mut out = self.eval_ctx(a, ck)?;
                out.extend(self.eval_ctx(b, ck)?);
                Ok(out)
            }
            RelExpr::Join(a, b) => {
                let la = self.eval_ctx(a, ck)?;
                let lb = self.eval_ctx(b, ck)?;
                let mut by_codomain: HashMap<&Key, Vec<&Key>> = HashMap::new();
                for (f, t) in &lb {
                    ck.tick()?;
                    by_codomain.entry(t).or_default().push(f);
                }
                let mut out = LinkSet::new();
                for (a_key, c_key) in &la {
                    ck.tick()?;
                    if let Some(bs) = by_codomain.get(c_key) {
                        for b_key in bs {
                            ck.tick()?;
                            let mut compound = a_key.clone();
                            compound.extend_from_slice(b_key);
                            out.insert((compound, c_key.clone()));
                        }
                    }
                }
                Ok(out)
            }
            RelExpr::Collateral(a, b) => {
                let la = self.eval_ctx(a, ck)?;
                let lb = self.eval_ctx(b, ck)?;
                let mut out = LinkSet::new();
                for (a_key, b_key) in &la {
                    for (c_key, d_key) in &lb {
                        ck.tick()?;
                        let mut dom = a_key.clone();
                        dom.extend_from_slice(c_key);
                        let mut cod = b_key.clone();
                        cod.extend_from_slice(d_key);
                        out.insert((dom, cod));
                    }
                }
                Ok(out)
            }
        }
    }

    /// Per-domain-element link counts for an expression whose domain is
    /// the atomic node `domain`: returns, for **every** element of the
    /// domain node, how many links leave it (elements without links count
    /// 0 — these are exactly the "detached" elements).
    pub fn link_counts(&self, expr: &RelExpr, domain: NodeId) -> Vec<u64> {
        let run = RunContext::unbounded();
        let ck = run.checkpoint();
        self.link_counts_ctx(expr, domain, &ck)
            .expect("unbounded context never cancels")
    }

    /// Like [`link_counts`](Self::link_counts), but cancellable.
    pub fn link_counts_ctx(
        &self,
        expr: &RelExpr,
        domain: NodeId,
        ck: &Checkpoint<'_>,
    ) -> Result<Vec<u64>, Cancelled> {
        let links = self.eval_ctx(expr, ck)?;
        let mut counts = vec![0u64; self.element_count(domain)];
        for (f, _) in &links {
            ck.tick()?;
            if f.len() == 1 {
                if let Some(c) = counts.get_mut(f[0] as usize) {
                    *c += 1;
                }
            }
        }
        Ok(counts)
    }

    /// Verify the instance against the graph's prescribed cardinalities:
    /// returns, per directed reading, the number of elements whose link
    /// count falls outside the prescription. Used to test conversion
    /// soundness and by the conflict detector.
    pub fn violations_of(&self, g: &Csg, r: RelRef) -> u64 {
        let domain = g.start_of(r);
        let prescribed = g.card_of(r);
        self.link_counts(&RelExpr::Atomic(r), domain)
            .iter()
            .filter(|c| !prescribed.contains(**c))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::Cardinality;
    use crate::graph::{NodeKind, RelKind};

    /// tracks(idt) —record→ {1}; two tracks share record 1, one track has
    /// no record (violating κ=1).
    fn sample() -> (Csg, CsgInstance, RelId, NodeId, NodeId) {
        let mut g = Csg::new("t");
        let tracks = g.add_node("tracks", NodeKind::Table);
        let record = g.add_node("record", NodeKind::Attribute);
        let r = g.add_relationship(
            tracks,
            record,
            RelKind::Attribute,
            Cardinality::one(),
            Cardinality::one_or_more(),
        );
        let mut inst = CsgInstance::empty(&g);
        let t0 = inst.add_element(tracks, Element::Tuple(0));
        let t1 = inst.add_element(tracks, Element::Tuple(1));
        let _t2 = inst.add_element(tracks, Element::Tuple(2));
        let v1 = inst.add_element(record, Element::Val(Value::Int(1)));
        inst.add_link(r, t0, v1);
        inst.add_link(r, t1, v1);
        (g, inst, r, tracks, record)
    }

    #[test]
    fn paper_example_4_1_link_representation() {
        let (_, inst, r, tracks, record) = sample();
        // (id_t, 1) ∈ I_P(ρ_tracks→record)
        assert_eq!(inst.element_count(tracks), 3);
        assert_eq!(inst.element_count(record), 1);
        assert_eq!(inst.links_of(r).len(), 2);
    }

    #[test]
    fn reading_links_reverse() {
        let (_, inst, r, _, _) = sample();
        let fwd = inst.reading_links(RelRef::fwd(r));
        let bwd = inst.reading_links(RelRef::bwd(r));
        assert_eq!(fwd.len(), 2);
        assert!(bwd.contains(&(vec![0], vec![0])));
        assert!(bwd.contains(&(vec![0], vec![1])));
    }

    #[test]
    fn link_counts_include_detached_elements() {
        let (_, inst, r, tracks, _) = sample();
        let counts = inst.link_counts(&RelExpr::Atomic(RelRef::fwd(r)), tracks);
        assert_eq!(counts, vec![1, 1, 0]);
    }

    #[test]
    fn violations_counted_against_prescription() {
        let (g, inst, r, _, _) = sample();
        // tracks→record prescribed 1: tuple 2 has none → 1 violation.
        assert_eq!(inst.violations_of(&g, RelRef::fwd(r)), 1);
        // record→tracks prescribed 1..*: value 1 has two → fine.
        assert_eq!(inst.violations_of(&g, RelRef::bwd(r)), 0);
    }

    #[test]
    fn composition_evaluates_relationally() {
        // a —ρ1→ b —ρ2→ c with two hops.
        let mut g = Csg::new("c");
        let a = g.add_node("a", NodeKind::Table);
        let b = g.add_node("b", NodeKind::Attribute);
        let c = g.add_node("c", NodeKind::Attribute);
        let r1 = g.add_relationship(a, b, RelKind::Attribute, Cardinality::any(), Cardinality::any());
        let r2 = g.add_relationship(b, c, RelKind::Equality, Cardinality::any(), Cardinality::any());
        let mut inst = CsgInstance::empty(&g);
        let a0 = inst.add_element(a, Element::Tuple(0));
        let b0 = inst.add_element(b, Element::Val(Value::Int(7)));
        let c0 = inst.add_element(c, Element::Val(Value::Int(7)));
        let c1 = inst.add_element(c, Element::Val(Value::Int(8)));
        inst.add_link(r1, a0, b0);
        inst.add_link(r2, b0, c0);
        inst.add_link(r2, b0, c1);
        let expr = RelExpr::path(&[RelRef::fwd(r1), RelRef::fwd(r2)]);
        let links = inst.eval(&expr);
        assert_eq!(links.len(), 2);
        assert!(links.contains(&(vec![0], vec![0])));
        assert!(links.contains(&(vec![0], vec![1])));
    }

    #[test]
    fn join_produces_compound_domains() {
        let (g, inst, r, _, record) = sample();
        let _ = g;
        // Join tracks→record with itself: pairs of tuples sharing a record.
        let expr = RelExpr::Join(
            Box::new(RelExpr::Atomic(RelRef::fwd(r))),
            Box::new(RelExpr::Atomic(RelRef::fwd(r))),
        );
        let links = inst.eval(&expr);
        // (t0,t0),(t0,t1),(t1,t0),(t1,t1) all share record value 0.
        assert_eq!(links.len(), 4);
        assert!(links.iter().all(|(d, c)| d.len() == 2 && c.len() == 1));
        let _ = record;
    }

    #[test]
    fn collateral_crosses_links() {
        let (_, inst, r, _, _) = sample();
        let expr = RelExpr::Collateral(
            Box::new(RelExpr::Atomic(RelRef::fwd(r))),
            Box::new(RelExpr::Atomic(RelRef::fwd(r))),
        );
        let links = inst.eval(&expr);
        assert_eq!(links.len(), 4); // 2 links × 2 links
    }

    #[test]
    fn add_element_is_idempotent() {
        let (g, mut inst, _, tracks, _) = sample();
        let _ = g;
        let before = inst.element_count(tracks);
        let idx = inst.add_element(tracks, Element::Tuple(0));
        assert_eq!(idx, 0);
        assert_eq!(inst.element_count(tracks), before);
    }
}
