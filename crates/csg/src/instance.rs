//! CSG instances `I(Γ) = (I_N, I_P)` (Definition 2) and expression
//! evaluation over them.
//!
//! Two evaluators live here (DESIGN.md §2i):
//!
//! * [`CsgInstance::eval`] materialises the full link set as a
//!   `BTreeSet<(Key, Key)>` — the direct transcription of the §4.1
//!   operator definitions, kept as the differential-test oracle;
//! * [`CsgInstance::count_eval`] computes only the **per-domain-element
//!   link counts** (`Vec<u64>`) that conflict detection actually
//!   consumes, by streaming frontier expansion over lazily-built CSR
//!   adjacency — no keys, no `BTreeSet`, no per-link allocation.
//!
//! [`CsgInstance::link_counts`] routes through the counting evaluator
//! plus a per-instance expression memo (each distinct `(expr, domain)`
//! pair is evaluated once per instance epoch); `EFES_CSG_COUNT=off`
//! forces the oracle path at run time.

use crate::expr::{DomainWidth, RelExpr};
use crate::graph::{Csg, Direction, NodeId, RelId, RelRef};
use efes_exec::{Cancelled, Checkpoint, RunContext};
use efes_relational::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};

/// An element of a node's extension: an abstract tuple identity for table
/// nodes, a concrete value for attribute nodes (paper Example 4.1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Element {
    /// Abstract identity `id_t` of a tuple.
    Tuple(usize),
    /// A concrete attribute value.
    Val(Value),
}

/// Key of an element (or, for join/collateral results, an element tuple)
/// inside the evaluation machinery: per-node element indices.
pub type Key = Vec<u32>;

/// A set of links, each connecting a (possibly compound) domain key to a
/// (possibly compound) codomain key. `BTreeSet` keeps evaluation
/// deterministic.
pub type LinkSet = BTreeSet<(Key, Key)>;

/// Environment variable selecting the `link_counts` evaluation path
/// (`on` = counting evaluator, `off` = BTreeSet oracle).
pub const CSG_COUNT_ENV_VAR: &str = "EFES_CSG_COUNT";

/// Parse an `EFES_CSG_COUNT` value; `None` means unparsable.
pub fn parse_csg_count(raw: &str) -> Option<bool> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "on" | "1" | "true" | "yes" | "" => Some(true),
        "off" | "0" | "false" | "no" => Some(false),
        _ => None,
    }
}

fn counting_enabled() -> bool {
    match std::env::var(CSG_COUNT_ENV_VAR) {
        Err(_) => true,
        Ok(raw) => match parse_csg_count(&raw) {
            Some(enabled) => enabled,
            None => {
                static WARN_ONCE: Once = Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "warning: unparsable {CSG_COUNT_ENV_VAR}={raw:?}; \
                         expected on/off (or 1/0, true/false, yes/no), keeping counting on"
                    );
                });
                true
            }
        },
    }
}

static MEMO_HITS: AtomicU64 = AtomicU64::new(0);
static MEMO_MISSES: AtomicU64 = AtomicU64::new(0);

/// Process-wide `(hits, misses)` of the expression-result memo, across
/// all instances — consumed by the serve layer's Prometheus renderer
/// (`efes_csg_eval_memo_{hits,misses}_total`), same pattern as
/// `efes_exec::fault::injected_counters`.
pub fn eval_memo_counters() -> (u64, u64) {
    (
        MEMO_HITS.load(Ordering::Relaxed),
        MEMO_MISSES.load(Ordering::Relaxed),
    )
}

/// CSR adjacency of one directed reading: `neighbours[offsets[f] ..
/// offsets[f + 1]]` are the **distinct** to-side element indices linked
/// from from-side index `f`, sorted ascending. Duplicate raw links are
/// collapsed at build time, mirroring the `BTreeSet` oracle's set
/// semantics.
#[derive(Debug)]
struct CsrReading {
    offsets: Vec<u32>,
    neighbours: Vec<u32>,
    /// Exclusive upper bound on the to-side indices appearing in
    /// `neighbours` — sizes the sweep's stamp arrays.
    to_bound: usize,
}

impl CsrReading {
    /// Distinct neighbours of from-index `f` (empty past the last
    /// linked index, matching the oracle's "no entry in `by_domain`").
    fn row(&self, f: u32) -> &[u32] {
        let f = f as usize;
        if f + 1 >= self.offsets.len() {
            return &[];
        }
        &self.neighbours[self.offsets[f] as usize..self.offsets[f + 1] as usize]
    }

    fn degree(&self, f: u32) -> u64 {
        let f = f as usize;
        if f + 1 >= self.offsets.len() {
            return 0;
        }
        (self.offsets[f + 1] - self.offsets[f]) as u64
    }
}

fn build_csr(links: &[(u32, u32)], dir: Direction, ck: &Checkpoint<'_>) -> Result<CsrReading, Cancelled> {
    assert!(
        links.len() < u32::MAX as usize,
        "CSR offsets are u32: relationship has too many links"
    );
    let orient = |&(f, t): &(u32, u32)| match dir {
        Direction::Forward => (f, t),
        Direction::Backward => (t, f),
    };
    // The two scan passes are tight branchless loops: one bulk tick
    // each keeps them auto-vectorisable while still honouring the
    // checkpoint's amortisation contract.
    let mut n_from = 0usize;
    let mut to_bound = 0usize;
    ck.tick_n(links.len() as u64)?;
    for l in links {
        let (f, t) = orient(l);
        n_from = n_from.max(f as usize + 1);
        to_bound = to_bound.max(t as usize + 1);
    }
    let mut offsets = vec![0u32; n_from + 1];
    ck.tick_n(links.len() as u64)?;
    for l in links {
        let (f, _) = orient(l);
        offsets[f as usize + 1] += 1;
    }
    for i in 0..n_from {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor = offsets.clone();
    let mut neighbours = vec![0u32; links.len()];
    for l in links {
        ck.tick()?;
        let (f, t) = orient(l);
        let c = &mut cursor[f as usize];
        neighbours[*c as usize] = t;
        *c += 1;
    }
    // Sort + dedup each row in place (compacting forward: the write
    // cursor never overtakes the read position).
    let mut write = 0usize;
    let mut compact = vec![0u32; n_from + 1];
    for i in 0..n_from {
        let (start, end) = (offsets[i] as usize, offsets[i + 1] as usize);
        neighbours[start..end].sort_unstable();
        compact[i] = write as u32;
        let mut last = None;
        for j in start..end {
            ck.tick()?;
            let t = neighbours[j];
            if last != Some(t) {
                neighbours[write] = t;
                write += 1;
                last = Some(t);
            }
        }
    }
    compact[n_from] = write as u32;
    neighbours.truncate(write);
    neighbours.shrink_to_fit();
    Ok(CsrReading {
        offsets: compact,
        neighbours,
        to_bound,
    })
}

/// A lazily-built CSR slot that stays empty if its build is cancelled
/// (`OnceLock::get_or_try_init` is unstable, so build-then-publish).
#[derive(Debug, Default)]
struct CsrCell(OnceLock<CsrReading>);

/// One visited-stamp level of the counting sweep. Concurrent
/// under-construction sets always live at distinct composition depths,
/// so each depth owns a stamp array + generation counter; bumping the
/// generation starts a fresh set without clearing.
#[derive(Default)]
struct StampLevel {
    stamps: Vec<u64>,
    generation: u64,
}

/// Scratch state of one [`CsgInstance::count_eval_ctx`] sweep.
#[derive(Default)]
struct Sweep {
    levels: Vec<StampLevel>,
    pool: Vec<Vec<u32>>,
}

impl Sweep {
    fn begin(&mut self, depth: usize) {
        if self.levels.len() <= depth {
            self.levels.resize_with(depth + 1, StampLevel::default);
        }
        self.levels[depth].generation += 1;
    }
}

/// The expression-result memo: `(expr, domain) → counts`.
type CountMemo = Mutex<HashMap<(RelExpr, NodeId), Arc<Vec<u64>>>>;

/// Derived evaluation state of an instance: CSR adjacency per directed
/// reading and the expression-result memo. Invisible to equality,
/// serde, and cloning — a cloned or deserialised instance starts cold —
/// and invalidated wholesale by any mutation (the epoch bumps).
#[derive(Debug, Default)]
struct EvalCaches {
    /// `csr[rel * 2 + dir]`, built on first use per reading.
    csr: OnceLock<Box<[CsrCell]>>,
    /// Valid for the current epoch only.
    memo: CountMemo,
    /// Bumped by `add_element` / `add_link`.
    epoch: u64,
}

impl Clone for EvalCaches {
    fn clone(&self) -> Self {
        EvalCaches::default()
    }
}

impl PartialEq for EvalCaches {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for EvalCaches {}

/// A CSG instance: element sets `I_N` per node and link sets `I_P` per
/// relationship.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsgInstance {
    /// `I_N`: elements per node, indexed by `NodeId`.
    node_elements: Vec<Vec<Element>>,
    /// Reverse lookup element → index, per node.
    #[serde(skip)]
    elem_index: Vec<HashMap<Element, u32>>,
    /// `I_P`: links per relationship as (from-element-index,
    /// to-element-index) pairs, indexed by `RelId`.
    links: Vec<Vec<(u32, u32)>>,
    /// Lazily-derived CSR adjacency + expression memo (DESIGN.md §2i).
    #[serde(skip)]
    caches: EvalCaches,
}

impl CsgInstance {
    /// An empty instance shaped for `g`.
    pub fn empty(g: &Csg) -> Self {
        CsgInstance {
            node_elements: vec![Vec::new(); g.nodes().len()],
            elem_index: vec![HashMap::new(); g.nodes().len()],
            links: vec![Vec::new(); g.relationships().len()],
            caches: EvalCaches::default(),
        }
    }

    /// Add an element to a node (idempotent); returns its index.
    pub fn add_element(&mut self, node: NodeId, elem: Element) -> u32 {
        if let Some(idx) = self.elem_index[node.0].get(&elem) {
            return *idx;
        }
        self.invalidate_eval_caches();
        let idx = self.node_elements[node.0].len() as u32;
        self.node_elements[node.0].push(elem.clone());
        self.elem_index[node.0].insert(elem, idx);
        idx
    }

    /// Drop all derived evaluation state and start a new epoch. Called
    /// by every mutating method; cheap when the caches are cold (the
    /// common case during instance construction).
    fn invalidate_eval_caches(&mut self) {
        self.caches.epoch += 1;
        self.caches.csr.take();
        self.caches
            .memo
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// The instance's evaluation epoch: bumped by every mutation. Each
    /// distinct `(expression, domain)` pair is evaluated at most once
    /// per epoch — [`link_counts`](Self::link_counts) results are
    /// memoised until the next mutation invalidates them.
    pub fn eval_epoch(&self) -> u64 {
        self.caches.epoch
    }

    /// Look up an element's index without inserting.
    pub fn element_index(&self, node: NodeId, elem: &Element) -> Option<u32> {
        self.elem_index[node.0].get(elem).copied()
    }

    /// Add a link to a relationship, by element indices. Invalidates
    /// the CSR adjacency cache and the expression memo.
    pub fn add_link(&mut self, rel: RelId, from_idx: u32, to_idx: u32) {
        self.invalidate_eval_caches();
        self.links[rel.0].push((from_idx, to_idx));
    }

    /// The elements of one node.
    pub fn elements(&self, node: NodeId) -> &[Element] {
        &self.node_elements[node.0]
    }

    /// Number of elements of one node.
    pub fn element_count(&self, node: NodeId) -> usize {
        self.node_elements[node.0].len()
    }

    /// The raw links of one relationship.
    pub fn links_of(&self, rel: RelId) -> &[(u32, u32)] {
        &self.links[rel.0]
    }

    /// The links of a directed reading as a [`LinkSet`] of singleton keys.
    pub fn reading_links(&self, r: RelRef) -> LinkSet {
        self.links[r.rel.0]
            .iter()
            .map(|(f, t)| match r.dir {
                Direction::Forward => (vec![*f], vec![*t]),
                Direction::Backward => (vec![*t], vec![*f]),
            })
            .collect()
    }

    /// Evaluate a relationship expression to its link set, per the
    /// operator definitions of §4.1:
    ///
    /// * `I_P(ρ₁ ∘ ρ₂) = I_P(ρ₁) ∘ I_P(ρ₂)` (relation composition),
    /// * `I_P(ρ₁ ∪ ρ₂) = I_P(ρ₁) ∪ I_P(ρ₂)`,
    /// * `I_P(ρ₁ ⋈ ρ₂) = {((a,b),c) : (a,c) ∈ I_P(ρ₁) ∧ (b,c) ∈ I_P(ρ₂)}`,
    /// * `I_P(ρ₁ ∥ ρ₂) = {((a,c),(b,d)) : (a,b) ∈ I_P(ρ₁) ∧ (c,d) ∈
    ///   I_P(ρ₂)}`.
    pub fn eval(&self, expr: &RelExpr) -> LinkSet {
        let run = RunContext::unbounded();
        let ck = run.checkpoint();
        self.eval_ctx(expr, &ck)
            .expect("unbounded context never cancels")
    }

    /// Like [`eval`](Self::eval), but cancellable: link materialisation
    /// loops tick `ck` and abort with [`Cancelled`] when the owning run
    /// is cancelled. The evaluation is the dominant cost of conflict
    /// detection at scale, so this is where deadline expiry actually
    /// interrupts a running structure stage.
    pub fn eval_ctx(&self, expr: &RelExpr, ck: &Checkpoint<'_>) -> Result<LinkSet, Cancelled> {
        match expr {
            RelExpr::Atomic(r) => {
                let mut out = LinkSet::new();
                for (f, t) in &self.links[r.rel.0] {
                    ck.tick()?;
                    out.insert(match r.dir {
                        Direction::Forward => (vec![*f], vec![*t]),
                        Direction::Backward => (vec![*t], vec![*f]),
                    });
                }
                Ok(out)
            }
            RelExpr::Compose(a, b) => {
                let la = self.eval_ctx(a, ck)?;
                let lb = self.eval_ctx(b, ck)?;
                let mut by_domain: HashMap<&Key, Vec<&Key>> = HashMap::new();
                for (f, t) in &lb {
                    ck.tick()?;
                    by_domain.entry(f).or_default().push(t);
                }
                let mut out = LinkSet::new();
                for (f, mid) in &la {
                    ck.tick()?;
                    if let Some(tails) = by_domain.get(mid) {
                        for t in tails {
                            ck.tick()?;
                            out.insert((f.clone(), (*t).clone()));
                        }
                    }
                }
                Ok(out)
            }
            RelExpr::Union(a, b, _) => {
                let mut out = self.eval_ctx(a, ck)?;
                out.extend(self.eval_ctx(b, ck)?);
                Ok(out)
            }
            RelExpr::Join(a, b) => {
                let la = self.eval_ctx(a, ck)?;
                let lb = self.eval_ctx(b, ck)?;
                let mut by_codomain: HashMap<&Key, Vec<&Key>> = HashMap::new();
                for (f, t) in &lb {
                    ck.tick()?;
                    by_codomain.entry(t).or_default().push(f);
                }
                let mut out = LinkSet::new();
                for (a_key, c_key) in &la {
                    ck.tick()?;
                    if let Some(bs) = by_codomain.get(c_key) {
                        for b_key in bs {
                            ck.tick()?;
                            let mut compound = a_key.clone();
                            compound.extend_from_slice(b_key);
                            out.insert((compound, c_key.clone()));
                        }
                    }
                }
                Ok(out)
            }
            RelExpr::Collateral(a, b) => {
                let la = self.eval_ctx(a, ck)?;
                let lb = self.eval_ctx(b, ck)?;
                let mut out = LinkSet::new();
                for (a_key, b_key) in &la {
                    for (c_key, d_key) in &lb {
                        ck.tick()?;
                        let mut dom = a_key.clone();
                        dom.extend_from_slice(c_key);
                        let mut cod = b_key.clone();
                        cod.extend_from_slice(d_key);
                        out.insert((dom, cod));
                    }
                }
                Ok(out)
            }
        }
    }

    /// Per-domain-element link counts for an expression whose domain is
    /// the atomic node `domain`: returns, for **every** element of the
    /// domain node, how many links leave it (elements without links count
    /// 0 — these are exactly the "detached" elements).
    ///
    /// Only links with singleton domain keys are tallied — a
    /// [`Compound`](DomainWidth::Compound)-domain expression (headed by
    /// `⋈`/`∥`) therefore counts 0 for every element. Passing one is
    /// almost always a caller bug, so it trips a `debug_assert`; use
    /// [`try_link_counts_ctx`](Self::try_link_counts_ctx) for the
    /// explicit `None` path when the expression shape is not statically
    /// known.
    ///
    /// Results are memoised per `(expr, domain)` until the next
    /// mutation ([`eval_epoch`](Self::eval_epoch)); evaluation streams
    /// through [`count_eval`](Self::count_eval) unless
    /// `EFES_CSG_COUNT=off` forces the `BTreeSet` oracle.
    pub fn link_counts(&self, expr: &RelExpr, domain: NodeId) -> Vec<u64> {
        let run = RunContext::unbounded();
        let ck = run.checkpoint();
        self.link_counts_ctx(expr, domain, &ck)
            .expect("unbounded context never cancels")
    }

    /// Like [`link_counts`](Self::link_counts), but cancellable.
    pub fn link_counts_ctx(
        &self,
        expr: &RelExpr,
        domain: NodeId,
        ck: &Checkpoint<'_>,
    ) -> Result<Vec<u64>, Cancelled> {
        self.link_counts_shared_ctx(expr, domain, ck)
            .map(|arc| (*arc).clone())
    }

    /// Like [`link_counts_ctx`](Self::link_counts_ctx), but shares the
    /// memoised result instead of copying it out — the conflict
    /// detector's entry point (a hit at 10⁷ rows would otherwise clone
    /// an 80 MB vector).
    pub fn link_counts_shared_ctx(
        &self,
        expr: &RelExpr,
        domain: NodeId,
        ck: &Checkpoint<'_>,
    ) -> Result<Arc<Vec<u64>>, Cancelled> {
        debug_assert!(
            expr.domain_width() != DomainWidth::Compound,
            "link_counts on a compound-key domain ({expr:?}): every link is \
             dropped by the singleton-key filter, so the result is all zeros; \
             use try_link_counts_ctx for the explicit None path"
        );
        self.counts_memoized(expr, domain, ck)
    }

    /// [`link_counts_ctx`](Self::link_counts_ctx) with the
    /// compound-domain contract made explicit: returns `Ok(None)` when
    /// `expr` has a [`Compound`](DomainWidth::Compound) domain (no link
    /// can ever be tallied per element), `Ok(Some(counts))` otherwise.
    pub fn try_link_counts_ctx(
        &self,
        expr: &RelExpr,
        domain: NodeId,
        ck: &Checkpoint<'_>,
    ) -> Result<Option<Arc<Vec<u64>>>, Cancelled> {
        if expr.domain_width() == DomainWidth::Compound {
            return Ok(None);
        }
        self.counts_memoized(expr, domain, ck).map(Some)
    }

    fn counts_memoized(
        &self,
        expr: &RelExpr,
        domain: NodeId,
        ck: &Checkpoint<'_>,
    ) -> Result<Arc<Vec<u64>>, Cancelled> {
        let key = (expr.clone(), domain);
        if let Some(hit) = self
            .caches
            .memo
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
        {
            MEMO_HITS.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        MEMO_MISSES.fetch_add(1, Ordering::Relaxed);
        let counts = if counting_enabled() {
            self.count_eval_ctx(expr, domain, ck)?
        } else {
            self.link_counts_reference_ctx(expr, domain, ck)?
        };
        let arc = Arc::new(counts);
        self.caches
            .memo
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, arc.clone());
        Ok(arc)
    }

    /// The pre-counting `link_counts` implementation — materialise the
    /// full link set with [`eval_ctx`](Self::eval_ctx), then tally
    /// singleton-key domains. Kept as the differential-test oracle
    /// (same pattern as `compute_multipass` and
    /// `similarity_flooding_reference`) and as the run-time fallback
    /// behind `EFES_CSG_COUNT=off`.
    pub fn link_counts_reference_ctx(
        &self,
        expr: &RelExpr,
        domain: NodeId,
        ck: &Checkpoint<'_>,
    ) -> Result<Vec<u64>, Cancelled> {
        let links = self.eval_ctx(expr, ck)?;
        let mut counts = vec![0u64; self.element_count(domain)];
        for (f, _) in &links {
            ck.tick()?;
            if f.len() == 1 {
                if let Some(c) = counts.get_mut(f[0] as usize) {
                    *c += 1;
                }
            }
        }
        Ok(counts)
    }

    /// The counting evaluator: per-domain-element **distinct-link
    /// counts** without materialising a single key.
    ///
    /// For every element `f` of `domain` it computes
    /// `|{t : ([f], t) ∈ I_P(expr)}|` — exactly what
    /// [`link_counts`](Self::link_counts) derives from the `BTreeSet`
    /// oracle — by expanding a frontier of element indices through the
    /// cached CSR adjacency of each atomic reading:
    ///
    /// * `Atomic`: one CSR row lookup (rows are pre-deduplicated);
    /// * `Compose`: expand the left operand into an intermediate
    ///   frontier, then the right operand from it;
    /// * `Union`: expand both operands into the same stamped set
    ///   (cross-branch duplicates collapse, like the oracle's set
    ///   union);
    /// * `Join`/`Collateral`: contribute **nothing** — every link they
    ///   produce carries a compound domain key, which a singleton
    ///   frontier index can never match (composing onto one matches no
    ///   mid key, and the top-level tally drops compound keys). This is
    ///   the count algebra's exact answer, not an approximation, and
    ///   the differential proptests pin it against the oracle for all
    ///   five operators.
    ///
    /// Visited-element dedup stamps are keyed on **raw element
    /// indices**, untyped across nodes, mirroring the oracle's untyped
    /// `Vec<u32>` keys.
    pub fn count_eval(&self, expr: &RelExpr, domain: NodeId) -> Vec<u64> {
        let run = RunContext::unbounded();
        let ck = run.checkpoint();
        self.count_eval_ctx(expr, domain, &ck)
            .expect("unbounded context never cancels")
    }

    /// Like [`count_eval`](Self::count_eval), but cancellable: the CSR
    /// builds and every frontier-edge visit tick `ck`, so a deadline
    /// interrupts the sweep mid-flight just as it interrupts
    /// [`eval_ctx`](Self::eval_ctx).
    pub fn count_eval_ctx(
        &self,
        expr: &RelExpr,
        domain: NodeId,
        ck: &Checkpoint<'_>,
    ) -> Result<Vec<u64>, Cancelled> {
        let n = self.element_count(domain);
        if let RelExpr::Atomic(r) = expr {
            // A bare reading is its CSR degree sequence.
            let csr = self.csr(*r, ck)?;
            let mut counts = Vec::with_capacity(n);
            for f in 0..n as u32 {
                ck.tick()?;
                counts.push(csr.degree(f));
            }
            return Ok(counts);
        }
        let mut counts = vec![0u64; n];
        let mut sweep = Sweep::default();
        let mut out = Vec::new();
        for f in 0..n as u32 {
            out.clear();
            sweep.begin(0);
            self.expand(expr, std::slice::from_ref(&f), &mut out, 0, &mut sweep, ck)?;
            counts[f as usize] = out.len() as u64;
        }
        Ok(counts)
    }

    /// Append the distinct image of `input` under `expr`'s
    /// singleton-key link fraction to `out`, deduplicating against the
    /// stamp level at `depth` (one level per live set: `out` at
    /// `depth`, compose intermediates at `depth + 1`).
    fn expand(
        &self,
        expr: &RelExpr,
        input: &[u32],
        out: &mut Vec<u32>,
        depth: usize,
        sweep: &mut Sweep,
        ck: &Checkpoint<'_>,
    ) -> Result<(), Cancelled> {
        match expr {
            RelExpr::Atomic(r) => {
                let csr = self.csr(*r, ck)?;
                let level = &mut sweep.levels[depth];
                if level.stamps.len() < csr.to_bound {
                    level.stamps.resize(csr.to_bound, 0);
                }
                let generation = level.generation;
                for &f in input {
                    for &t in csr.row(f) {
                        ck.tick()?;
                        let stamp = &mut level.stamps[t as usize];
                        if *stamp != generation {
                            *stamp = generation;
                            out.push(t);
                        }
                    }
                }
                Ok(())
            }
            RelExpr::Compose(a, b) => {
                let mut mid = sweep.pool.pop().unwrap_or_default();
                mid.clear();
                sweep.begin(depth + 1);
                self.expand(a, input, &mut mid, depth + 1, sweep, ck)?;
                self.expand(b, &mid, out, depth, sweep, ck)?;
                sweep.pool.push(mid);
                Ok(())
            }
            RelExpr::Union(a, b, _) => {
                self.expand(a, input, out, depth, sweep, ck)?;
                self.expand(b, input, out, depth, sweep, ck)
            }
            // Every join/collateral link carries a compound domain key:
            // a singleton frontier index never matches one, and the
            // top-level tally drops them — so these branches are
            // exactly empty for counting purposes.
            RelExpr::Join(_, _) | RelExpr::Collateral(_, _) => Ok(()),
        }
    }

    /// The cached CSR adjacency of a directed reading, built (and
    /// deduplicated) on first use; cancellation aborts the build
    /// without publishing a partial cache.
    fn csr(&self, r: RelRef, ck: &Checkpoint<'_>) -> Result<&CsrReading, Cancelled> {
        let cells = self.caches.csr.get_or_init(|| {
            (0..self.links.len() * 2)
                .map(|_| CsrCell::default())
                .collect()
        });
        let cell = &cells[r.rel.0 * 2 + (r.dir == Direction::Backward) as usize];
        if let Some(csr) = cell.0.get() {
            return Ok(csr);
        }
        let built = build_csr(&self.links[r.rel.0], r.dir, ck)?;
        Ok(cell.0.get_or_init(|| built))
    }

    /// Distinct neighbour rows of a directed reading, for crate-local
    /// consumers (`nary`) that need adjacency rather than counts.
    pub(crate) fn csr_row(&self, r: RelRef, f: u32, ck: &Checkpoint<'_>) -> Result<&[u32], Cancelled> {
        Ok(self.csr(r, ck)?.row(f))
    }

    /// Verify the instance against the graph's prescribed cardinalities:
    /// returns, per directed reading, the number of elements whose link
    /// count falls outside the prescription. Used to test conversion
    /// soundness and by the conflict detector.
    pub fn violations_of(&self, g: &Csg, r: RelRef) -> u64 {
        let domain = g.start_of(r);
        let prescribed = g.card_of(r);
        self.link_counts(&RelExpr::Atomic(r), domain)
            .iter()
            .filter(|c| !prescribed.contains(**c))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::Cardinality;
    use crate::graph::{NodeKind, RelKind};

    /// tracks(idt) —record→ {1}; two tracks share record 1, one track has
    /// no record (violating κ=1).
    fn sample() -> (Csg, CsgInstance, RelId, NodeId, NodeId) {
        let mut g = Csg::new("t");
        let tracks = g.add_node("tracks", NodeKind::Table);
        let record = g.add_node("record", NodeKind::Attribute);
        let r = g.add_relationship(
            tracks,
            record,
            RelKind::Attribute,
            Cardinality::one(),
            Cardinality::one_or_more(),
        );
        let mut inst = CsgInstance::empty(&g);
        let t0 = inst.add_element(tracks, Element::Tuple(0));
        let t1 = inst.add_element(tracks, Element::Tuple(1));
        let _t2 = inst.add_element(tracks, Element::Tuple(2));
        let v1 = inst.add_element(record, Element::Val(Value::Int(1)));
        inst.add_link(r, t0, v1);
        inst.add_link(r, t1, v1);
        (g, inst, r, tracks, record)
    }

    #[test]
    fn paper_example_4_1_link_representation() {
        let (_, inst, r, tracks, record) = sample();
        // (id_t, 1) ∈ I_P(ρ_tracks→record)
        assert_eq!(inst.element_count(tracks), 3);
        assert_eq!(inst.element_count(record), 1);
        assert_eq!(inst.links_of(r).len(), 2);
    }

    #[test]
    fn reading_links_reverse() {
        let (_, inst, r, _, _) = sample();
        let fwd = inst.reading_links(RelRef::fwd(r));
        let bwd = inst.reading_links(RelRef::bwd(r));
        assert_eq!(fwd.len(), 2);
        assert!(bwd.contains(&(vec![0], vec![0])));
        assert!(bwd.contains(&(vec![0], vec![1])));
    }

    #[test]
    fn link_counts_include_detached_elements() {
        let (_, inst, r, tracks, _) = sample();
        let counts = inst.link_counts(&RelExpr::Atomic(RelRef::fwd(r)), tracks);
        assert_eq!(counts, vec![1, 1, 0]);
    }

    #[test]
    fn violations_counted_against_prescription() {
        let (g, inst, r, _, _) = sample();
        // tracks→record prescribed 1: tuple 2 has none → 1 violation.
        assert_eq!(inst.violations_of(&g, RelRef::fwd(r)), 1);
        // record→tracks prescribed 1..*: value 1 has two → fine.
        assert_eq!(inst.violations_of(&g, RelRef::bwd(r)), 0);
    }

    #[test]
    fn composition_evaluates_relationally() {
        // a —ρ1→ b —ρ2→ c with two hops.
        let mut g = Csg::new("c");
        let a = g.add_node("a", NodeKind::Table);
        let b = g.add_node("b", NodeKind::Attribute);
        let c = g.add_node("c", NodeKind::Attribute);
        let r1 = g.add_relationship(a, b, RelKind::Attribute, Cardinality::any(), Cardinality::any());
        let r2 = g.add_relationship(b, c, RelKind::Equality, Cardinality::any(), Cardinality::any());
        let mut inst = CsgInstance::empty(&g);
        let a0 = inst.add_element(a, Element::Tuple(0));
        let b0 = inst.add_element(b, Element::Val(Value::Int(7)));
        let c0 = inst.add_element(c, Element::Val(Value::Int(7)));
        let c1 = inst.add_element(c, Element::Val(Value::Int(8)));
        inst.add_link(r1, a0, b0);
        inst.add_link(r2, b0, c0);
        inst.add_link(r2, b0, c1);
        let expr = RelExpr::path(&[RelRef::fwd(r1), RelRef::fwd(r2)]);
        let links = inst.eval(&expr);
        assert_eq!(links.len(), 2);
        assert!(links.contains(&(vec![0], vec![0])));
        assert!(links.contains(&(vec![0], vec![1])));
    }

    #[test]
    fn join_produces_compound_domains() {
        let (g, inst, r, _, record) = sample();
        let _ = g;
        // Join tracks→record with itself: pairs of tuples sharing a record.
        let expr = RelExpr::Join(
            Box::new(RelExpr::Atomic(RelRef::fwd(r))),
            Box::new(RelExpr::Atomic(RelRef::fwd(r))),
        );
        let links = inst.eval(&expr);
        // (t0,t0),(t0,t1),(t1,t0),(t1,t1) all share record value 0.
        assert_eq!(links.len(), 4);
        assert!(links.iter().all(|(d, c)| d.len() == 2 && c.len() == 1));
        let _ = record;
    }

    #[test]
    fn collateral_crosses_links() {
        let (_, inst, r, _, _) = sample();
        let expr = RelExpr::Collateral(
            Box::new(RelExpr::Atomic(RelRef::fwd(r))),
            Box::new(RelExpr::Atomic(RelRef::fwd(r))),
        );
        let links = inst.eval(&expr);
        assert_eq!(links.len(), 4); // 2 links × 2 links
    }

    #[test]
    fn add_element_is_idempotent() {
        let (g, mut inst, _, tracks, _) = sample();
        let _ = g;
        let before = inst.element_count(tracks);
        let idx = inst.add_element(tracks, Element::Tuple(0));
        assert_eq!(idx, 0);
        assert_eq!(inst.element_count(tracks), before);
    }
}
