//! Conversion of relational databases into CSGs.
//!
//! Paper §4.1: *"for each of its relations, a corresponding table node is
//! created [...] for each attribute, an attribute node is created and
//! connected to its respective table node via a relationship. While these
//! attribute nodes hold the set of distinct values of the original
//! relational attribute, the relationships link tuples and their
//! respective attribute values. With this proceeding, any relational
//! database can be turned into a CSG without loss of information."*

use crate::cardinality::Cardinality;
use crate::graph::{Csg, NodeId, NodeKind, RelId, RelKind};
use crate::instance::{CsgInstance, Element};
use efes_exec::{Cancelled, RunContext};
use efes_relational::schema::{AttrId, TableId};
use efes_relational::{ConstraintKind, Database};

/// The result of converting a database: the graph, its instance, and the
/// mapping from relational identifiers back to graph identifiers (needed
/// to anchor correspondences during relationship matching).
#[derive(Debug, Clone)]
pub struct CsgConversion {
    /// The cardinality-constrained schema graph.
    pub csg: Csg,
    /// Its instance, populated from the database's data.
    pub instance: CsgInstance,
    /// Table node per relational table.
    pub table_nodes: Vec<NodeId>,
    /// Attribute node per relational attribute, `[table][attr]`.
    pub attr_nodes: Vec<Vec<NodeId>>,
    /// The tuple→value relationship per relational attribute,
    /// `[table][attr]`.
    pub attr_rels: Vec<Vec<RelId>>,
    /// The equality relationships created for foreign keys, with the
    /// constraint name each one came from.
    pub fk_rels: Vec<(String, RelId)>,
}

impl CsgConversion {
    /// The attribute node for a relational attribute.
    pub fn attr_node(&self, table: TableId, attr: AttrId) -> NodeId {
        self.attr_nodes[table.0][attr.0]
    }

    /// The table node for a relational table.
    pub fn table_node(&self, table: TableId) -> NodeId {
        self.table_nodes[table.0]
    }

    /// The tuple→value relationship for a relational attribute.
    pub fn attr_rel(&self, table: TableId, attr: AttrId) -> RelId {
        self.attr_rels[table.0][attr.0]
    }
}

/// Convert a database (schema + constraints + instance) into a CSG with
/// its instance.
///
/// Prescribed cardinalities encode the constraints and the two relational
/// conformity rules (§4.1):
///
/// | reading | cardinality | encodes |
/// |---|---|---|
/// | tuple → value | `1` if NOT NULL, else `0..1` | not-null; "each tuple has at most one value per attribute" |
/// | value → tuple | `1` if UNIQUE, else `1..*` | unique; "each attribute value must be contained in a tuple" |
/// | FK value → PK value (equality) | `1` | foreign key (every fk value equals exactly one referenced value) |
/// | PK value → FK value (equality) | `0..1` | equality over distinct values is partial-injective |
pub fn database_to_csg(db: &Database) -> CsgConversion {
    database_to_csg_ctx(db, &RunContext::unbounded()).expect("unbounded context never cancels")
}

/// Like [`database_to_csg`], but cancellable: the instance fill — the
/// only part that scales with row count — ticks `run`'s checkpoint per
/// cell and per equality link, so conversion of a very large database
/// aborts promptly when `run` fires.
pub fn database_to_csg_ctx(db: &Database, run: &RunContext) -> Result<CsgConversion, Cancelled> {
    let ck = run.checkpoint();
    let mut csg = Csg::new(db.schema.name.clone());
    let mut instance_pending = Vec::new(); // (rel, table, attr) fill later

    let mut table_nodes = Vec::new();
    let mut attr_nodes: Vec<Vec<NodeId>> = Vec::new();
    let mut attr_rels: Vec<Vec<RelId>> = Vec::new();

    for (ti, table) in db.schema.tables().iter().enumerate() {
        let tid = TableId(ti);
        let tnode = csg.add_node(table.name.clone(), NodeKind::Table);
        table_nodes.push(tnode);
        let mut anodes = Vec::new();
        let mut arels = Vec::new();
        for (ai, attr) in table.attributes.iter().enumerate() {
            let aid = AttrId(ai);
            // Qualified names keep node names unique across tables (the
            // paper's Figure 4 uses primes: name, name', name'').
            let anode = csg.add_node(
                format!("{}.{}", table.name, attr.name),
                NodeKind::Attribute,
            );
            let fwd = if db.constraints.is_not_null(tid, aid) {
                Cardinality::one()
            } else {
                Cardinality::zero_or_one()
            };
            let bwd = if db.constraints.is_unique(tid, aid) {
                Cardinality::one()
            } else {
                Cardinality::one_or_more()
            };
            let rel = csg.add_relationship(tnode, anode, RelKind::Attribute, fwd, bwd);
            instance_pending.push((rel, tid, aid));
            anodes.push(anode);
            arels.push(rel);
        }
        attr_nodes.push(anodes);
        attr_rels.push(arels);
    }

    // Foreign keys become equality relationships between attribute nodes.
    let mut fk_rels = Vec::new();
    for c in db.constraints.iter() {
        if let ConstraintKind::ForeignKey {
            from_table,
            from_attrs,
            to_table,
            to_attrs,
        } = &c.kind
        {
            for (fa, ta) in from_attrs.iter().zip(to_attrs.iter()) {
                let from_node = attr_nodes[from_table.0][fa.0];
                let to_node = attr_nodes[to_table.0][ta.0];
                let rel = csg.add_relationship(
                    from_node,
                    to_node,
                    RelKind::Equality,
                    Cardinality::one(),
                    Cardinality::zero_or_one(),
                );
                fk_rels.push((c.name.clone(), rel));
            }
        }
    }

    // --- Instance ---
    let mut instance = CsgInstance::empty(&csg);
    for (ti, data) in db.instance.iter_tables() {
        let tnode = table_nodes[ti.0];
        for (ri, row) in data.rows().iter().enumerate() {
            let t_idx = instance.add_element(tnode, Element::Tuple(ri));
            for (ai, v) in row.iter().enumerate() {
                ck.tick()?;
                if v.is_null() {
                    continue;
                }
                let anode = attr_nodes[ti.0][ai];
                let v_idx = instance.add_element(anode, Element::Val(v.clone()));
                instance.add_link(attr_rels[ti.0][ai], t_idx, v_idx);
            }
        }
    }
    // Equality links: connect equal elements of the two attribute nodes.
    for c in db.constraints.iter() {
        if let ConstraintKind::ForeignKey {
            from_table,
            from_attrs,
            to_table,
            to_attrs,
        } = &c.kind
        {
            for ((fa, ta), (_, rel)) in from_attrs
                .iter()
                .zip(to_attrs.iter())
                .zip(fk_rels.iter().filter(|(name, _)| name == &c.name))
            {
                let from_node = attr_nodes[from_table.0][fa.0];
                let to_node = attr_nodes[to_table.0][ta.0];
                // Resolve matching indices with a read-only pass (no
                // per-element Value clones), then append the links.
                let mut eq_links: Vec<(u32, u32)> = Vec::new();
                for (idx, elem) in instance.elements(from_node).iter().enumerate() {
                    ck.tick()?;
                    if let Some(to_idx) = instance.element_index(to_node, elem) {
                        eq_links.push((idx as u32, to_idx));
                    }
                }
                for (idx, to_idx) in eq_links {
                    instance.add_link(*rel, idx, to_idx);
                }
            }
        }
    }

    Ok(CsgConversion {
        csg,
        instance,
        table_nodes,
        attr_nodes,
        attr_rels,
        fk_rels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RelRef;
    use efes_relational::{DataType, DatabaseBuilder, Value};

    /// The target schema of Figure 2a: records(id PK, title NN, artist NN,
    /// genre NN) and tracks(record FK NN, title NN, duration).
    pub(crate) fn target_db() -> Database {
        DatabaseBuilder::new("target")
            .table("records", |t| {
                t.attr("id", DataType::Integer)
                    .attr("title", DataType::Text)
                    .attr("artist", DataType::Text)
                    .attr("genre", DataType::Text)
                    .primary_key(&["id"])
                    .not_null("title")
                    .not_null("artist")
                    .not_null("genre")
            })
            .table("tracks", |t| {
                t.attr("record", DataType::Integer)
                    .attr("title", DataType::Text)
                    .attr("duration", DataType::Text)
                    .not_null("record")
                    .not_null("title")
                    .foreign_key(&["record"], "records", &["id"])
            })
            .rows(
                "records",
                vec![vec![
                    1.into(),
                    "Second Helping".into(),
                    "Lynyrd Skynyrd".into(),
                    "rock".into(),
                ]],
            )
            .rows(
                "tracks",
                vec![
                    vec![1.into(), "Sweet Home Alabama".into(), "4:43".into()],
                    vec![1.into(), "I Need You".into(), "6:55".into()],
                    vec![1.into(), "Don't Ask Me No Questions".into(), "3:26".into()],
                ],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn figure4_target_cardinalities() {
        let db = target_db();
        let conv = database_to_csg(&db);
        let g = &conv.csg;
        let (rec_t, rec_a) = db.schema.resolve("records", "id").unwrap();
        // records→id: PK ⇒ not-null ⇒ 1; id→records: unique ⇒ 1.
        let rel = conv.attr_rel(rec_t, rec_a);
        assert_eq!(g.card_of(RelRef::fwd(rel)), &Cardinality::one());
        assert_eq!(g.card_of(RelRef::bwd(rel)), &Cardinality::one());
        // tracks→record: NN ⇒ 1; record→tracks: not unique ⇒ 1..*.
        let (tr_t, tr_a) = db.schema.resolve("tracks", "record").unwrap();
        let rel = conv.attr_rel(tr_t, tr_a);
        assert_eq!(g.card_of(RelRef::fwd(rel)), &Cardinality::one());
        assert_eq!(g.card_of(RelRef::bwd(rel)), &Cardinality::one_or_more());
        // tracks→duration: nullable ⇒ 0..1.
        let (du_t, du_a) = db.schema.resolve("tracks", "duration").unwrap();
        let rel = conv.attr_rel(du_t, du_a);
        assert_eq!(g.card_of(RelRef::fwd(rel)), &Cardinality::zero_or_one());
    }

    #[test]
    fn fk_becomes_equality_relationship() {
        let db = target_db();
        let conv = database_to_csg(&db);
        assert_eq!(conv.fk_rels.len(), 1);
        let (_, rel) = &conv.fk_rels[0];
        let r = conv.csg.relationship(*rel);
        assert_eq!(r.kind, RelKind::Equality);
        assert_eq!(r.card_fwd, Cardinality::one());
        assert_eq!(r.card_bwd, Cardinality::zero_or_one());
    }

    #[test]
    fn instance_holds_distinct_values_and_tuple_links() {
        let db = target_db();
        let conv = database_to_csg(&db);
        let (tr_t, tr_a) = db.schema.resolve("tracks", "record").unwrap();
        let record_node = conv.attr_node(tr_t, tr_a);
        // Three tracks share record value 1: one distinct value, 3 links.
        assert_eq!(conv.instance.element_count(record_node), 1);
        assert_eq!(conv.instance.links_of(conv.attr_rel(tr_t, tr_a)).len(), 3);
        assert_eq!(
            conv.instance.elements(record_node)[0],
            Element::Val(Value::Int(1))
        );
    }

    #[test]
    fn valid_instance_has_no_csg_violations() {
        let db = target_db();
        let conv = database_to_csg(&db);
        for (i, _) in conv.csg.relationships().iter().enumerate() {
            let r = RelId(i);
            assert_eq!(
                conv.instance.violations_of(&conv.csg, RelRef::fwd(r)),
                0,
                "fwd violations on ρ{i}"
            );
            assert_eq!(
                conv.instance.violations_of(&conv.csg, RelRef::bwd(r)),
                0,
                "bwd violations on ρ{i}"
            );
        }
    }

    #[test]
    fn nulls_produce_no_links() {
        let db = DatabaseBuilder::new("n")
            .table("t", |t| t.attr("a", DataType::Text))
            .rows("t", vec![vec![Value::Null], vec!["x".into()]])
            .build()
            .unwrap();
        let conv = database_to_csg(&db);
        let (tid, aid) = db.schema.resolve("t", "a").unwrap();
        assert_eq!(conv.instance.links_of(conv.attr_rel(tid, aid)).len(), 1);
        // The nullable attribute reads 0..1 forward — so no violation.
        assert_eq!(
            conv.instance
                .violations_of(&conv.csg, RelRef::fwd(conv.attr_rel(tid, aid))),
            0
        );
    }

    #[test]
    fn node_names_are_qualified() {
        let db = target_db();
        let conv = database_to_csg(&db);
        assert!(conv.csg.node_by_name("records.title").is_some());
        assert!(conv.csg.node_by_name("tracks.title").is_some());
        assert!(conv.csg.node_by_name("records").is_some());
    }
}
