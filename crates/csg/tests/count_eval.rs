//! Differential tests for the counting evaluator: over arbitrary CSG
//! instances and expression trees spanning all five operators in both
//! directions, `count_eval` must agree exactly with the per-element
//! counts derived from the `BTreeSet` oracle
//! (`link_counts_reference_ctx`) — plus cancellation, memoisation, and
//! compound-domain contract pins.

use efes_csg::cardinality::Cardinality;
use efes_csg::expr::{DomainWidth, RelExpr, UnionMode};
use efes_csg::graph::{Csg, NodeId, NodeKind, RelId, RelKind, RelRef};
use efes_csg::instance::{parse_csg_count, CsgInstance, Element};
use efes_exec::{CancellationToken, Cancelled, RunContext, CHECK_INTERVAL};
use efes_relational::Value;
use proptest::prelude::*;

const NODES: usize = 4;
const ELEMS: u32 = 6;

/// A 4-node graph a→b→c plus a→d with arbitrary links on all three
/// relationships — enough shape for compose chains, unions of distinct
/// fragments, joins on a shared codomain, and collaterals.
fn build(l1: &[(u32, u32)], l2: &[(u32, u32)], l3: &[(u32, u32)]) -> (Csg, CsgInstance, [RelId; 3]) {
    let mut g = Csg::new("p");
    let a = g.add_node("a", NodeKind::Table);
    let b = g.add_node("b", NodeKind::Attribute);
    let c = g.add_node("c", NodeKind::Attribute);
    let d = g.add_node("d", NodeKind::Attribute);
    let r1 = g.add_relationship(a, b, RelKind::Attribute, Cardinality::any(), Cardinality::any());
    let r2 = g.add_relationship(b, c, RelKind::Equality, Cardinality::any(), Cardinality::any());
    let r3 = g.add_relationship(a, d, RelKind::Attribute, Cardinality::any(), Cardinality::any());
    let mut inst = CsgInstance::empty(&g);
    for i in 0..ELEMS {
        inst.add_element(a, Element::Tuple(i as usize));
        inst.add_element(b, Element::Val(Value::Int(i as i64)));
        inst.add_element(c, Element::Val(Value::Int(100 + i as i64)));
        inst.add_element(d, Element::Val(Value::Int(200 + i as i64)));
    }
    for &(f, t) in l1 {
        inst.add_link(r1, f, t);
    }
    for &(f, t) in l2 {
        inst.add_link(r2, f, t);
    }
    for &(f, t) in l3 {
        inst.add_link(r3, f, t);
    }
    (g, inst, [r1, r2, r3])
}

fn arb_links() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..ELEMS, 0..ELEMS), 0..12)
}

fn arb_instance() -> impl Strategy<Value = (Csg, CsgInstance, [RelId; 3])> {
    (arb_links(), arb_links(), arb_links()).prop_map(|(l1, l2, l3)| build(&l1, &l2, &l3))
}

/// One preorder instruction of an encoded expression tree:
/// `(operator, relationship, forward?, union mode)`.
type ExprCode = (u8, u8, bool, u8);

/// Decode an expression tree from a preorder code stream. Each code
/// picks an operator (0 = leaf, 1 = `∘`, 2 = `∪`, 3 = `⋈`, 4 = `∥`,
/// taken modulo `ops`) plus an atomic reading for the leaf case; the
/// tree bottoms out when the depth budget or the stream runs dry, so
/// shrinking the code vector shrinks the tree.
fn decode_expr(codes: &[ExprCode], pos: &mut usize, depth: u32, ops: u8) -> RelExpr {
    let (op, rel, fwd, mode) = codes.get(*pos).copied().unwrap_or((0, 0, true, 0));
    *pos += 1;
    let r = RelId((rel % 3) as usize);
    let atom = RelExpr::Atomic(if fwd { RelRef::fwd(r) } else { RelRef::bwd(r) });
    if depth == 0 || *pos >= codes.len() {
        return atom;
    }
    let child = |pos: &mut usize| Box::new(decode_expr(codes, pos, depth - 1, ops));
    match op % ops {
        1 => RelExpr::Compose(child(pos), child(pos)),
        2 => {
            let m = match mode % 3 {
                0 => UnionMode::DisjointDomains,
                1 => UnionMode::EqualDomainsDisjointCodomains,
                _ => UnionMode::EqualDomainsOverlappingCodomains,
            };
            RelExpr::Union(child(pos), child(pos), m)
        }
        3 => RelExpr::Join(child(pos), child(pos)),
        4 => RelExpr::Collateral(child(pos), child(pos)),
        _ => atom,
    }
}

fn arb_codes() -> impl Strategy<Value = Vec<ExprCode>> {
    proptest::collection::vec((0u8..5, 0u8..3, proptest::arbitrary::any::<bool>(), 0u8..3), 1..16)
}

/// An arbitrary expression tree over all five operators. Depth is
/// capped at 2 so the worst collateral-of-collaterals oracle link set
/// stays small.
fn arb_expr() -> impl Strategy<Value = RelExpr> {
    arb_codes().prop_map(|codes| decode_expr(&codes, &mut 0, 2, 5))
}

/// A pure compose/union tree — the shape the conflict detector's hot
/// path actually evaluates — up to depth 4.
fn arb_chain_expr() -> impl Strategy<Value = RelExpr> {
    arb_codes().prop_map(|codes| decode_expr(&codes, &mut 0, 4, 3))
}

fn reference_counts(inst: &CsgInstance, expr: &RelExpr, domain: NodeId) -> Vec<u64> {
    let run = RunContext::unbounded();
    let ck = run.checkpoint();
    inst.link_counts_reference_ctx(expr, domain, &ck)
        .expect("unbounded context never cancels")
}

proptest! {
    /// The counting evaluator equals the BTreeSet-derived counts for
    /// arbitrary trees over all five operators, on every domain node.
    #[test]
    fn count_eval_matches_oracle((_, inst, _) in arb_instance(), expr in arb_expr()) {
        for n in 0..NODES {
            let domain = NodeId(n);
            prop_assert_eq!(
                inst.count_eval(&expr, domain),
                reference_counts(&inst, &expr, domain),
                "domain node {}", n
            );
        }
    }

    /// Deeper compose/union chains (the detect_conflicts shape) agree
    /// too, including through the memoised public entry point.
    #[test]
    fn chain_counts_match_oracle((_, inst, _) in arb_instance(), expr in arb_chain_expr()) {
        for n in 0..NODES {
            let domain = NodeId(n);
            let oracle = reference_counts(&inst, &expr, domain);
            prop_assert_eq!(inst.count_eval(&expr, domain), oracle.clone());
            prop_assert_eq!(inst.link_counts(&expr, domain), oracle);
        }
    }

    /// The memo returns the identical result on re-evaluation, and a
    /// mutation invalidates it (the epoch bumps and the fresh counts
    /// reflect the new link).
    #[test]
    fn memo_is_transparent_and_invalidated(
        (_, mut inst, rels) in arb_instance(),
        expr in arb_chain_expr(),
    ) {
        let domain = NodeId(0);
        let first = inst.link_counts(&expr, domain);
        prop_assert_eq!(&inst.link_counts(&expr, domain), &first);
        let epoch = inst.eval_epoch();
        inst.add_link(rels[0], 0, 0);
        prop_assert!(inst.eval_epoch() > epoch, "mutation must bump the epoch");
        prop_assert_eq!(
            inst.link_counts(&expr, domain),
            reference_counts(&inst, &expr, domain),
            "post-mutation counts must be recomputed, not replayed"
        );
    }
}

/// `count_eval_ctx` aborts mid-CSR-sweep: with the CSR already built,
/// the frontier expansion's per-edge ticks hit the cancelled token.
#[test]
fn count_eval_aborts_mid_sweep() {
    let mut g = Csg::new("cancel");
    let a = g.add_node("a", NodeKind::Table);
    let b = g.add_node("b", NodeKind::Attribute);
    let r = g.add_relationship(a, b, RelKind::Attribute, Cardinality::any(), Cardinality::any());
    let mut inst = CsgInstance::empty(&g);
    inst.add_element(a, Element::Tuple(0));
    let fanout = 2 * CHECK_INTERVAL;
    for i in 0..fanout {
        inst.add_element(b, Element::Val(Value::Int(i as i64)));
        inst.add_link(r, 0, i);
    }
    // Warm the CSR cache so the abort provably happens in the sweep.
    let expr = RelExpr::Compose(
        Box::new(RelExpr::Atomic(RelRef::fwd(r))),
        Box::new(RelExpr::Atomic(RelRef::bwd(r))),
    );
    assert_eq!(inst.count_eval(&expr, a), vec![1]);

    let token = CancellationToken::new();
    token.cancel();
    let run = RunContext::new(token, None);
    let ck = run.checkpoint();
    assert_eq!(inst.count_eval_ctx(&expr, a, &ck), Err(Cancelled));
}

/// The lazy CSR build itself is cancellable, and a cancelled build is
/// not published: a later unbounded evaluation still succeeds.
#[test]
fn csr_build_aborts_and_is_not_cached_partially() {
    let mut g = Csg::new("cancel-build");
    let a = g.add_node("a", NodeKind::Table);
    let b = g.add_node("b", NodeKind::Attribute);
    let r = g.add_relationship(a, b, RelKind::Attribute, Cardinality::any(), Cardinality::any());
    let mut inst = CsgInstance::empty(&g);
    inst.add_element(a, Element::Tuple(0));
    inst.add_element(b, Element::Val(Value::Int(0)));
    for _ in 0..2 * CHECK_INTERVAL {
        inst.add_link(r, 0, 0); // duplicates: CSR dedups to one edge
    }
    let token = CancellationToken::new();
    token.cancel();
    let run = RunContext::new(token, None);
    let ck = run.checkpoint();
    let expr = RelExpr::Atomic(RelRef::fwd(r));
    assert_eq!(inst.count_eval_ctx(&expr, a, &ck), Err(Cancelled));
    // The aborted build left no partial cache behind.
    assert_eq!(inst.count_eval(&expr, a), vec![1]);
}

fn join_over_shared_record() -> (Csg, CsgInstance, RelExpr, NodeId) {
    let mut g = Csg::new("compound");
    let tracks = g.add_node("tracks", NodeKind::Table);
    let record = g.add_node("record", NodeKind::Attribute);
    let r = g.add_relationship(
        tracks,
        record,
        RelKind::Attribute,
        Cardinality::one(),
        Cardinality::one_or_more(),
    );
    let mut inst = CsgInstance::empty(&g);
    let t0 = inst.add_element(tracks, Element::Tuple(0));
    let t1 = inst.add_element(tracks, Element::Tuple(1));
    let v = inst.add_element(record, Element::Val(Value::Int(1)));
    inst.add_link(r, t0, v);
    inst.add_link(r, t1, v);
    let expr = RelExpr::Join(
        Box::new(RelExpr::Atomic(RelRef::fwd(r))),
        Box::new(RelExpr::Atomic(RelRef::fwd(r))),
    );
    (g, inst, expr, tracks)
}

/// Satellite pin: a compound-key domain never tallies — the oracle
/// silently filters every link (`f.len() == 1`), the counting evaluator
/// returns the same all-zero vector, and `try_link_counts_ctx` makes
/// the contract explicit with `None`.
#[test]
fn compound_domain_counts_are_explicitly_empty() {
    let (_, inst, expr, tracks) = join_over_shared_record();
    assert_eq!(expr.domain_width(), DomainWidth::Compound);
    // The join produces 4 links — all with 2-wide domain keys.
    assert_eq!(inst.eval(&expr).len(), 4);
    // Oracle: every link dropped by the singleton-key filter.
    assert_eq!(reference_counts(&inst, &expr, tracks), vec![0, 0]);
    // Counting evaluator: same zeros, no debug assert (count_eval is
    // total over all shapes).
    assert_eq!(inst.count_eval(&expr, tracks), vec![0, 0]);
    // Explicit contract: the checked entry point refuses outright.
    let run = RunContext::unbounded();
    let ck = run.checkpoint();
    assert_eq!(inst.try_link_counts_ctx(&expr, tracks, &ck), Ok(None));
    // A mixed union still tallies its singleton branch.
    let r = RelRef::fwd(efes_csg::graph::RelId(0));
    let mixed = RelExpr::Union(
        Box::new(RelExpr::Atomic(r)),
        Box::new(expr.clone()),
        UnionMode::DisjointDomains,
    );
    assert_eq!(mixed.domain_width(), DomainWidth::Mixed);
    let counted = inst
        .try_link_counts_ctx(&mixed, tracks, &ck)
        .unwrap()
        .expect("mixed width is countable");
    assert_eq!(&*counted, &vec![1, 1]);
    assert_eq!(*counted, reference_counts(&inst, &mixed, tracks));
}

/// Satellite pin: in debug builds, `link_counts` on a compound-key
/// domain is a programming error and trips the debug assert.
#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "compound-key domain")]
fn link_counts_compound_domain_debug_asserts() {
    let (_, inst, expr, tracks) = join_over_shared_record();
    let _ = inst.link_counts(&expr, tracks);
}

/// Satellite pin: in release builds, `link_counts` on a compound-key
/// domain keeps the oracle's silent all-zeros behaviour.
#[test]
#[cfg(not(debug_assertions))]
fn link_counts_compound_domain_counts_zero() {
    let (_, inst, expr, tracks) = join_over_shared_record();
    assert_eq!(inst.link_counts(&expr, tracks), vec![0, 0]);
}

/// The memo counters move: a fresh evaluation records a miss, replaying
/// it records a hit (deltas, not absolutes — the counters are global).
#[test]
fn memo_counters_record_hits_and_misses() {
    let (_, inst, _) = {
        let l = [(0u32, 0u32), (1, 1), (2, 1)];
        build(&l, &l, &l)
    };
    let expr = RelExpr::Compose(
        Box::new(RelExpr::Atomic(RelRef::fwd(RelId(0)))),
        Box::new(RelExpr::Atomic(RelRef::fwd(RelId(1)))),
    );
    let (_h0, m0) = efes_csg::eval_memo_counters();
    let first = inst.link_counts(&expr, NodeId(0));
    let (h1, m1) = efes_csg::eval_memo_counters();
    assert!(m1 > m0, "first evaluation must record a miss");
    let second = inst.link_counts(&expr, NodeId(0));
    let (h2, _) = efes_csg::eval_memo_counters();
    assert!(h2 > h1, "replay must record a hit");
    assert_eq!(first, second);
}

#[test]
fn csg_count_env_values_parse() {
    for on in ["on", "1", "true", "yes", "", " ON "] {
        assert_eq!(parse_csg_count(on), Some(true), "{on:?}");
    }
    for off in ["off", "0", "false", "no", " OFF "] {
        assert_eq!(parse_csg_count(off), Some(false), "{off:?}");
    }
    assert_eq!(parse_csg_count("maybe"), None);
}

#[test]
fn domain_width_analysis() {
    let a = RelExpr::Atomic(RelRef::fwd(RelId(0)));
    let join = RelExpr::Join(Box::new(a.clone()), Box::new(a.clone()));
    let coll = RelExpr::Collateral(Box::new(a.clone()), Box::new(a.clone()));
    assert_eq!(a.domain_width(), DomainWidth::Singleton);
    assert_eq!(join.domain_width(), DomainWidth::Compound);
    assert_eq!(coll.domain_width(), DomainWidth::Compound);
    // Compose inherits its left operand's width.
    let compose = RelExpr::Compose(Box::new(join.clone()), Box::new(a.clone()));
    assert_eq!(compose.domain_width(), DomainWidth::Compound);
    let chain = RelExpr::Compose(Box::new(a.clone()), Box::new(join.clone()));
    assert_eq!(chain.domain_width(), DomainWidth::Singleton);
    // Unions: agree → that width; disagree → mixed.
    let mixed = RelExpr::Union(Box::new(a.clone()), Box::new(join), UnionMode::DisjointDomains);
    assert_eq!(mixed.domain_width(), DomainWidth::Mixed);
    let both = RelExpr::Union(Box::new(a.clone()), Box::new(a), UnionMode::DisjointDomains);
    assert_eq!(both.domain_width(), DomainWidth::Singleton);
}
