//! Property-based tests for the cardinality algebra (Lemmas 1–4).
//!
//! Strategy: generate small bounded cardinality sets, enumerate them
//! explicitly, and check every inferred operator result against
//! brute-force set computation. For the *sound over-approximation*
//! operators (composition on multi-interval sets), we check ⊇ instead of
//! equality.

use efes_csg::Cardinality;
use proptest::prelude::*;

const LIMIT: u64 = 40;

/// A small cardinality: 1–2 intervals with bounds in 0..=6, possibly one
/// unbounded tail.
fn arb_card() -> impl Strategy<Value = Cardinality> {
    let interval = (0u64..=6, 0u64..=6, any::<bool>()).prop_map(|(a, b, unbounded)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        (lo, if unbounded { None } else { Some(hi) })
    });
    proptest::collection::vec(interval, 1..=2)
        .prop_map(Cardinality::from_intervals)
}

/// A single-interval cardinality — the shape Lemma 1 is stated for.
fn arb_interval_card() -> impl Strategy<Value = Cardinality> {
    (0u64..=6, 0u64..=6, any::<bool>()).prop_map(|(a, b, unbounded)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        if unbounded {
            Cardinality::at_least(lo)
        } else {
            Cardinality::range(lo, hi)
        }
    })
}

fn elems(c: &Cardinality) -> Vec<u64> {
    c.enumerate_up_to(LIMIT)
}

fn sgn(n: u64) -> u64 {
    u64::from(n > 0)
}

proptest! {
    /// Normalisation: membership is preserved and intervals are canonical
    /// (re-normalising is a no-op).
    #[test]
    fn normalisation_is_idempotent(c in arb_card()) {
        let again = Cardinality::from_intervals(
            elems(&c).iter().map(|n| (*n, Some(*n))),
        );
        for n in 0..=LIMIT {
            if c.max().flatten().is_some_and(|m| m <= LIMIT) {
                prop_assert_eq!(c.contains(n), again.contains(n));
            }
        }
    }

    /// Subset agrees with element-wise containment on bounded sets.
    #[test]
    fn subset_matches_enumeration(a in arb_card(), b in arb_card()) {
        let brute = elems(&a).iter().all(|n| b.contains(*n))
            // An unbounded a can never be a subset of a bounded b.
            && !(a.max() == Some(None) && b.max() != Some(None));
        prop_assert_eq!(a.is_subset(&b), brute, "a={} b={}", a, b);
    }

    /// Lemma 1 on single intervals: compose equals the stated formula.
    #[test]
    fn lemma1_formula(a in arb_interval_card(), b in arb_interval_card()) {
        let c = a.compose(&b);
        let lo = if a.min().unwrap() == 0 { 0 } else { b.min().unwrap() };
        prop_assert_eq!(c.min(), Some(lo.min(sgn(a.min().unwrap()) * b.min().unwrap())));
        match (a.max().unwrap(), b.max().unwrap()) {
            (Some(0), _) | (_, Some(0)) => prop_assert_eq!(c.max(), Some(Some(0))),
            (Some(x), Some(y)) => prop_assert_eq!(c.max(), Some(Some(x * y))),
            _ => prop_assert_eq!(c.max(), Some(None)),
        }
    }

    /// Composition is a sound over-approximation: for any achievable link
    /// structure, an element with `x ∈ κ₁` mid-links each having
    /// `y ∈ κ₂` end-links can reach between `min` and `x·y` distinct ends;
    /// in particular `x·y` itself must be admitted.
    #[test]
    fn compose_admits_products(a in arb_card(), b in arb_card()) {
        let c = a.compose(&b);
        for x in elems(&a).iter().take(6) {
            for y in elems(&b).iter().take(6) {
                if *x == 0 {
                    prop_assert!(c.contains(0), "0 missing in {} ∘ {}", a, b);
                } else {
                    prop_assert!(
                        c.contains(x * y) || x * y > LIMIT,
                        "{}·{} missing in {} ∘ {} = {}", x, y, a, b, c
                    );
                }
            }
        }
    }

    /// Minkowski sum: exact on enumerations.
    #[test]
    fn plus_is_minkowski(a in arb_card(), b in arb_card()) {
        let c = a.plus(&b);
        let ea = elems(&a);
        let eb = elems(&b);
        for x in ea.iter().take(8) {
            for y in eb.iter().take(8) {
                prop_assert!(c.contains(x + y));
            }
        }
        // No element below the minimal sum.
        if let (Some(ma), Some(mb)) = (a.min(), b.min()) {
            if ma + mb > 0 {
                prop_assert!(!c.contains(ma + mb - 1));
            }
        }
    }

    /// Hat-plus: every c with max(a,b) ≤ c ≤ a+b is contained.
    #[test]
    fn hat_plus_covers_band(a in arb_interval_card(), b in arb_interval_card()) {
        let c = a.hat_plus(&b);
        let (la, lb) = (a.min().unwrap(), b.min().unwrap());
        for x in elems(&a).iter().take(4) {
            for y in elems(&b).iter().take(4) {
                for v in (*x).max(*y)..=(x + y).min(LIMIT) {
                    prop_assert!(c.contains(v), "{} missing in {} +̂ {}", v, a, b);
                }
            }
        }
        let _ = (la, lb);
    }

    /// Join: empty iff a max is 0 or a side is empty; otherwise 1..m.
    #[test]
    fn join_shape(a in arb_card(), b in arb_card()) {
        let j = a.join(&b);
        let m = match (a.max(), b.max()) {
            (Some(x), Some(y)) => match (x, y) {
                (None, None) => Some(None),
                (Some(p), None) => Some(Some(p)),
                (None, Some(q)) => Some(Some(q)),
                (Some(p), Some(q)) => Some(Some(p.min(q))),
            },
            _ => None,
        };
        match m {
            None | Some(Some(0)) => prop_assert!(j.is_empty()),
            Some(Some(n)) => {
                prop_assert_eq!(j.min(), Some(1));
                prop_assert_eq!(j.max(), Some(Some(n)));
            }
            Some(None) => {
                prop_assert_eq!(j.min(), Some(1));
                prop_assert_eq!(j.max(), Some(None));
            }
        }
    }

    /// Collateral always starts at 0 and multiplies the maxima.
    #[test]
    fn collateral_shape(a in arb_card(), b in arb_card()) {
        let c = a.collateral(&b);
        prop_assert_eq!(c.min(), Some(0));
        match (a.max().unwrap(), b.max().unwrap()) {
            // 0·* = 0: a side with max 0 contributes no links at all.
            (Some(0), _) | (_, Some(0)) => prop_assert_eq!(c.max(), Some(Some(0))),
            (Some(x), Some(y)) => prop_assert_eq!(c.max(), Some(Some(x * y))),
            _ => prop_assert_eq!(c.max(), Some(None)),
        }
    }

    /// Union is exact set union.
    #[test]
    fn union_is_set_union(a in arb_card(), b in arb_card()) {
        let u = a.union(&b);
        for n in 0..=LIMIT {
            prop_assert_eq!(u.contains(n), a.contains(n) || b.contains(n));
        }
    }

    /// Intersection is exact.
    #[test]
    fn intersection_is_exact(a in arb_card(), b in arb_card()) {
        let i = a.intersect(&b);
        for n in 0..=LIMIT {
            prop_assert_eq!(i.contains(n), a.contains(n) && b.contains(n));
        }
    }

    /// Hull contains the original set.
    #[test]
    fn hull_is_superset(a in arb_card()) {
        prop_assert!(a.is_subset(&a.hull()));
    }

    /// Display round-trips through the constructors for common shapes.
    #[test]
    fn subset_is_partial_order(a in arb_card(), b in arb_card(), c in arb_card()) {
        prop_assert!(a.is_subset(&a));
        if a.is_subset(&b) && b.is_subset(&c) {
            prop_assert!(a.is_subset(&c));
        }
        if a.is_subset(&b) && b.is_subset(&a) {
            prop_assert_eq!(a, b);
        }
    }
}
