//! Property-based tests for CSG instance evaluation: the operator
//! semantics of §4.1 hold on random link structures.

use efes_csg::cardinality::Cardinality;
use efes_csg::expr::RelExpr;
use efes_csg::graph::{Csg, NodeKind, RelId, RelKind, RelRef};
use efes_csg::instance::{CsgInstance, Element};
use efes_relational::Value;
use proptest::prelude::*;

/// A random 3-node chain a→b→c with arbitrary links.
fn arb_chain() -> impl Strategy<Value = (Csg, CsgInstance, RelId, RelId)> {
    let links1 = proptest::collection::vec((0u32..5, 0u32..5), 0..16);
    let links2 = proptest::collection::vec((0u32..5, 0u32..5), 0..16);
    (links1, links2).prop_map(|(l1, l2)| {
        let mut g = Csg::new("p");
        let a = g.add_node("a", NodeKind::Table);
        let b = g.add_node("b", NodeKind::Attribute);
        let c = g.add_node("c", NodeKind::Attribute);
        let r1 = g.add_relationship(a, b, RelKind::Attribute, Cardinality::any(), Cardinality::any());
        let r2 = g.add_relationship(b, c, RelKind::Equality, Cardinality::any(), Cardinality::any());
        let mut inst = CsgInstance::empty(&g);
        for i in 0..5 {
            inst.add_element(a, Element::Tuple(i as usize));
            inst.add_element(b, Element::Val(Value::Int(i)));
            inst.add_element(c, Element::Val(Value::Int(100 + i)));
        }
        for (f, t) in l1 {
            inst.add_link(r1, f, t);
        }
        for (f, t) in l2 {
            inst.add_link(r2, f, t);
        }
        (g, inst, r1, r2)
    })
}

proptest! {
    /// Composition agrees with brute-force relation composition.
    #[test]
    fn composition_matches_brute_force((_, inst, r1, r2) in arb_chain()) {
        let expr = RelExpr::path(&[RelRef::fwd(r1), RelRef::fwd(r2)]);
        let links = inst.eval(&expr);
        let l1 = inst.reading_links(RelRef::fwd(r1));
        let l2 = inst.reading_links(RelRef::fwd(r2));
        let mut brute = std::collections::BTreeSet::new();
        for (x, m) in &l1 {
            for (m2, y) in &l2 {
                if m == m2 {
                    brute.insert((x.clone(), y.clone()));
                }
            }
        }
        prop_assert_eq!(links, brute);
    }

    /// Reversing a reading transposes its link set.
    #[test]
    fn reverse_reading_transposes((_, inst, r1, _) in arb_chain()) {
        let fwd = inst.reading_links(RelRef::fwd(r1));
        let bwd = inst.reading_links(RelRef::bwd(r1));
        let transposed: std::collections::BTreeSet<_> =
            fwd.iter().map(|(a, b)| (b.clone(), a.clone())).collect();
        prop_assert_eq!(bwd, transposed);
    }

    /// Union evaluates to the set union of the operands' links.
    #[test]
    fn union_is_link_union((_, inst, r1, _) in arb_chain()) {
        use efes_csg::expr::UnionMode;
        let a = RelExpr::Atomic(RelRef::fwd(r1));
        let expr = RelExpr::Union(
            Box::new(a.clone()),
            Box::new(a.clone()),
            UnionMode::DisjointDomains,
        );
        prop_assert_eq!(inst.eval(&expr), inst.eval(&a));
    }

    /// Join produces only links whose codomain is shared, with compound
    /// domains of the operands' domain arities.
    #[test]
    fn join_shape_is_sound((_, inst, r1, _) in arb_chain()) {
        let a = RelExpr::Atomic(RelRef::fwd(r1));
        let joined = RelExpr::Join(Box::new(a.clone()), Box::new(a.clone()));
        let links = inst.eval(&joined);
        let base = inst.eval(&a);
        for (dom, cod) in &links {
            prop_assert_eq!(dom.len(), 2);
            prop_assert!(base.contains(&(vec![dom[0]], cod.clone())));
            prop_assert!(base.contains(&(vec![dom[1]], cod.clone())));
        }
        // Every base link joins with itself.
        for (d, c) in &base {
            prop_assert!(links.contains(&(vec![d[0], d[0]], c.clone())));
        }
    }

    /// Collateral link count is the product of the operand counts.
    #[test]
    fn collateral_counts_multiply((_, inst, r1, r2) in arb_chain()) {
        let a = RelExpr::Atomic(RelRef::fwd(r1));
        let b = RelExpr::Atomic(RelRef::fwd(r2));
        let coll = RelExpr::Collateral(Box::new(a.clone()), Box::new(b.clone()));
        let n = inst.eval(&coll).len();
        prop_assert_eq!(n, inst.eval(&a).len() * inst.eval(&b).len());
    }

    /// Per-element link counts sum to the total link count and cover
    /// every domain element.
    #[test]
    fn link_counts_are_complete((g, inst, r1, _) in arb_chain()) {
        let domain = g.node_by_name("a").unwrap();
        let counts = inst.link_counts(&RelExpr::Atomic(RelRef::fwd(r1)), domain);
        prop_assert_eq!(counts.len(), inst.element_count(domain));
        let total: u64 = counts.iter().sum();
        prop_assert_eq!(total as usize, inst.reading_links(RelRef::fwd(r1)).len());
    }

    /// Static inference is a sound over-approximation of observed
    /// per-element counts when the prescription is `0..*` (always true)
    /// — and violations_of counts exactly the elements outside any
    /// narrower prescription.
    #[test]
    fn violations_match_manual_count((g, inst, r1, _) in arb_chain()) {
        let domain = g.node_by_name("a").unwrap();
        let counts = inst.link_counts(&RelExpr::Atomic(RelRef::fwd(r1)), domain);
        let prescribed = Cardinality::one();
        let manual = counts.iter().filter(|c| !prescribed.contains(**c)).count() as u64;
        // Rebuild the graph with prescription 1 to compare.
        let mut g2 = Csg::new("q");
        let a = g2.add_node("a", NodeKind::Table);
        let b = g2.add_node("b", NodeKind::Attribute);
        let r = g2.add_relationship(a, b, RelKind::Attribute, Cardinality::one(), Cardinality::any());
        let mut inst2 = CsgInstance::empty(&g2);
        for i in 0..5 {
            inst2.add_element(a, Element::Tuple(i as usize));
            inst2.add_element(b, Element::Val(Value::Int(i)));
        }
        for (f, t) in inst.links_of(r1) {
            inst2.add_link(r, *f, *t);
        }
        prop_assert_eq!(inst2.violations_of(&g2, RelRef::fwd(r)), manual);
    }
}
