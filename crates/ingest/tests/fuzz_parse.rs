//! Robustness properties: no input, however hostile, may panic the
//! ingest parser. Errors are the contract; crashes are bugs.

use efes_ingest::ScenarioUpload;
use proptest::prelude::*;

/// A valid document to mutate, with both payload styles present.
const SEED_DOC: &str = r#"{
  "name": "seed",
  "sources": [{
    "name": "s",
    "tables": [{
      "name": "t",
      "attributes": [
        {"name": "id", "datatype": "integer"},
        {"name": "note", "datatype": "text"},
        {"name": "price", "datatype": "float"}
      ],
      "rows": [[1, "a", 1.5], [2, null, 3], [3, "c,\"d\"", null]]
    }]
  }],
  "target": {
    "name": "g",
    "tables": [{
      "name": "u",
      "attributes": [{"name": "id", "datatype": "integer"}],
      "csv": "id\n1\n"
    }]
  },
  "correspondences": [{"source_table": "t", "target_table": "u"}]
}"#;

/// Parse and, when the document survives parsing, assemble — both
/// stages must fail gracefully, never panic.
fn exercise(bytes: &[u8]) {
    if let Ok(upload) = ScenarioUpload::parse(bytes) {
        let _ = upload.into_scenario();
    }
}

proptest! {
    /// Completely arbitrary bytes never panic the parser.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        exercise(&bytes);
    }

    /// A valid document with one byte smashed never panics — this walks
    /// the parser into the deep, almost-valid corners raw noise misses.
    #[test]
    fn mutated_document_never_panics(pos in any::<usize>(), byte in any::<u8>()) {
        let mut bytes = SEED_DOC.as_bytes().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] = byte;
        exercise(&bytes);
    }

    /// Truncating a valid document anywhere never panics.
    #[test]
    fn truncated_document_never_panics(len in any::<usize>()) {
        let bytes = SEED_DOC.as_bytes();
        exercise(&bytes[..len % (bytes.len() + 1)]);
    }

    /// Arbitrary text as an embedded CSV payload never panics the
    /// streaming CSV parser, whatever quotes or separators it contains.
    #[test]
    fn arbitrary_csv_payload_never_panics(csv in "[a-z0-9 ,\\.\"\\n-]{0,200}") {
        let escaped = serde_json::to_string(&csv).unwrap();
        let doc = format!(
            r#"{{
              "name": "f",
              "sources": [{{
                "name": "s",
                "tables": [{{
                  "name": "t",
                  "attributes": [
                    {{"name": "a", "datatype": "integer"}},
                    {{"name": "b", "datatype": "text"}}
                  ],
                  "csv": {escaped}
                }}]
              }}],
              "target": {{"name": "g", "tables": []}}
            }}"#
        );
        exercise(doc.as_bytes());
    }
}
