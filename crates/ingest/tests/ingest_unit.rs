//! Unit-level behaviour of the upload wire format and the dynamic
//! registry: declared-type casting, error reporting, deduplication,
//! budgeting and LRU eviction.

use efes::{ScenarioProvider, ScenarioRegistry};
use efes_ingest::{
    approx_scenario_bytes, parse_budget, scenario_fingerprint, DynamicRegistry, InsertError,
    InsertOutcome, RemoveError, ScenarioUpload, UploadFormat,
};
use efes_relational::{AttrId, IntegrationScenario, TableId, Value};

/// A small two-sided upload document; `marker` varies one cell so
/// different markers mean different content (and fingerprints).
fn doc(name: &str, marker: i64) -> String {
    format!(
        r#"{{
          "name": "{name}",
          "description": "test upload",
          "sources": [{{
            "name": "src",
            "tables": [{{
              "name": "albums",
              "attributes": [
                {{"name": "id", "datatype": "integer"}},
                {{"name": "title", "datatype": "text"}},
                {{"name": "price", "datatype": "float"}}
              ],
              "rows": [[1, "First", 9.99], [{marker}, "Second", 3], [4, null, null]]
            }}],
            "constraints": [{{"primary_key": {{"table": "albums", "attrs": ["id"]}}}}]
          }}],
          "target": {{
            "name": "tgt",
            "tables": [{{
              "name": "records",
              "attributes": [
                {{"name": "id", "datatype": "integer"}},
                {{"name": "title", "datatype": "text"}},
                {{"name": "price", "datatype": "float"}}
              ],
              "rows": []
            }}],
            "constraints": [{{"primary_key": {{"table": "records", "attrs": ["id"]}}}}]
          }},
          "correspondences": [
            {{"source_table": "albums", "target_table": "records"}},
            {{"source_table": "albums", "source_attr": "title",
              "target_table": "records", "target_attr": "title"}},
            {{"source_table": "albums", "source_attr": "price",
              "target_table": "records", "target_attr": "price"}}
          ]
        }}"#
    )
}

fn scenario(name: &str, marker: i64) -> IntegrationScenario {
    ScenarioUpload::parse(doc(name, marker).as_bytes())
        .unwrap()
        .into_scenario()
        .unwrap()
}

#[test]
fn json_rows_ingest_casts_by_declared_type() {
    let s = scenario("demo", 2);
    assert_eq!(s.name, "demo");
    assert_eq!(s.sources.len(), 1);
    let data = s.sources[0].instance.table(TableId(0));
    assert_eq!(data.len(), 3);
    let rows = data.rows();
    // JSON `3` in a float attribute recovers as the float it denotes.
    assert_eq!(rows[1][2], Value::Float(3.0));
    assert_eq!(rows[0][2], Value::Float(9.99));
    assert_eq!(rows[2][1], Value::Null);
    // The payload landed column-primary: typed stores exist without any
    // row materialisation having been needed.
    assert!(data.column_store(AttrId(0)).is_some());
    assert_eq!(s.correspondences.len(), 3);
}

#[test]
fn csv_payload_ingests_with_quotes_and_nulls() {
    let body = r#"{
      "name": "csvdemo",
      "sources": [{
        "name": "s",
        "tables": [{
          "name": "t",
          "attributes": [
            {"name": "id", "datatype": "integer"},
            {"name": "note", "datatype": "text"}
          ],
          "csv": "id,note\r\n1,\"a,\"\"b\"\"\"\n2,\n"
        }]
      }],
      "target": {
        "name": "g",
        "tables": [{
          "name": "t2",
          "attributes": [{"name": "id", "datatype": "integer"}],
          "rows": []
        }]
      },
      "correspondences": [{"source_table": "t", "target_table": "t2"}]
    }"#;
    let s = ScenarioUpload::parse(body.as_bytes())
        .unwrap()
        .into_scenario()
        .unwrap();
    let rows = s.sources[0].instance.table(TableId(0)).rows();
    assert_eq!(rows[0][1], Value::Text("a,\"b\"".into()));
    // An empty CSV field is NULL, not an empty string.
    assert_eq!(rows[1][1], Value::Null);
    assert_eq!(rows[1][0], Value::Int(2));
}

#[test]
fn upload_round_trips_through_both_formats() {
    let original = scenario("round", 2);
    for format in [UploadFormat::JsonRows, UploadFormat::Csv] {
        let up = ScenarioUpload::from_scenario(&original, format);
        let json = serde_json::to_string(&up).unwrap();
        let back = ScenarioUpload::parse(json.as_bytes())
            .unwrap()
            .into_scenario()
            .unwrap();
        assert_eq!(back.name, original.name);
        assert_eq!(back.sources, original.sources);
        assert_eq!(back.target, original.target);
        assert_eq!(back.correspondences, original.correspondences);
        assert_eq!(
            scenario_fingerprint(&back),
            scenario_fingerprint(&original),
            "{format:?} round trip must preserve the content fingerprint"
        );
    }
}

#[test]
fn malformed_documents_are_rejected_with_context() {
    // Not UTF-8.
    assert!(ScenarioUpload::parse(&[0xff, 0xfe, 0x00]).is_err());
    // Not JSON.
    assert!(ScenarioUpload::parse(b"not json").is_err());

    // Both payload styles at once.
    let both = doc("x", 2).replace(
        r#""rows": [[1, "First", 9.99], [2, "Second", 3], [4, null, null]]"#,
        r#""rows": [], "csv": "id,title,price\n""#,
    );
    let err = ScenarioUpload::parse(both.as_bytes()).unwrap_err();
    assert!(err.to_string().contains("not both"), "{err}");

    // Ragged row.
    let ragged = doc("x", 2).replace("[4, null, null]", "[4, null]");
    let err = ScenarioUpload::parse(ragged.as_bytes()).unwrap_err();
    assert!(err.to_string().contains("2 cells"), "{err}");

    // A cell that cannot cast to its declared type, with full location.
    let bad = doc("x", 2).replace(r#"[4, null, null]"#, r#"[4, null, "abc"]"#);
    let err = ScenarioUpload::parse(bad.as_bytes()).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("albums") && msg.contains("price") && msg.contains("row 2"),
        "{msg}"
    );

    // CSV header must match the declared attributes.
    let hdr = r#"{
      "name": "h", "sources": [{"name": "s", "tables": [{
        "name": "t",
        "attributes": [{"name": "id", "datatype": "integer"}],
        "csv": "wrong\n1\n"
      }]}],
      "target": {"name": "g", "tables": []}
    }"#;
    let err = ScenarioUpload::parse(hdr.as_bytes()).unwrap_err();
    assert!(err.to_string().contains("header"), "{err}");

    // Out-of-range integer cell.
    let big = doc("x", 2).replace("[4, null, null]", "[18446744073709551615, null, null]");
    assert!(ScenarioUpload::parse(big.as_bytes()).is_err());
}

#[test]
fn scenario_assembly_errors_name_the_offender() {
    // Unknown correspondence attribute.
    let bad = doc("x", 2).replace(r#""source_attr": "price""#, r#""source_attr": "nope""#);
    let err = ScenarioUpload::parse(bad.as_bytes())
        .unwrap()
        .into_scenario()
        .unwrap_err();
    assert!(err.to_string().contains("nope"), "{err}");

    // Source index out of range.
    let oob = doc("x", 2).replace(
        r#"{"source_table": "albums", "target_table": "records"}"#,
        r#"{"source": 7, "source_table": "albums", "target_table": "records"}"#,
    );
    let err = ScenarioUpload::parse(oob.as_bytes())
        .unwrap()
        .into_scenario()
        .unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");

    // Constraint referencing an unknown table.
    let badc = doc("x", 2).replace(
        r#""primary_key": {"table": "albums""#,
        r#""primary_key": {"table": "ghost""#,
    );
    let err = ScenarioUpload::parse(badc.as_bytes())
        .unwrap()
        .into_scenario()
        .unwrap_err();
    assert!(err.to_string().contains("ghost"), "{err}");
}

#[test]
fn fingerprint_ignores_name_but_not_content() {
    let a = scenario("first", 2);
    let b = scenario("second", 2);
    let c = scenario("first", 3);
    assert_eq!(scenario_fingerprint(&a), scenario_fingerprint(&b));
    assert_ne!(scenario_fingerprint(&a), scenario_fingerprint(&c));
}

fn statics_with_tiny() -> ScenarioRegistry {
    let mut statics = ScenarioRegistry::new();
    statics.register("tiny", "compiled-in scenario", || scenario("tiny", 99));
    statics
}

#[test]
fn registry_insert_get_list_remove() {
    let reg = DynamicRegistry::new(statics_with_tiny(), Some(1 << 20));
    let s = scenario("up-a", 2);
    let bytes = approx_scenario_bytes(&s);
    match reg.insert("up-a", "uploaded a", s).unwrap() {
        InsertOutcome::Inserted { bytes: b, evicted } => {
            assert_eq!(b, bytes);
            assert!(evicted.is_empty());
        }
        other => panic!("expected Inserted, got {other:?}"),
    }
    assert!(reg.contains("up-a"));
    assert!(reg.get("up-a").is_some());
    assert_eq!(reg.resident_bytes(), bytes);
    assert_eq!(reg.uploaded_len(), 1);
    assert_eq!(reg.static_len(), 1);

    let infos = reg.infos();
    assert_eq!(infos.len(), 2);
    // Sorted by name: "tiny" after "up-a"? No — 't' < 'u'.
    assert_eq!(infos[0].name, "tiny");
    assert_eq!(infos[0].provenance, "static");
    assert_eq!(infos[0].resident_bytes, None);
    assert_eq!(infos[1].name, "up-a");
    assert_eq!(infos[1].provenance, "uploaded");
    assert_eq!(infos[1].resident_bytes, Some(bytes as u64));
    assert!(infos[1].cached);

    assert_eq!(reg.remove("up-a").unwrap(), bytes);
    assert_eq!(reg.resident_bytes(), 0);
    assert_eq!(reg.remove("up-a"), Err(RemoveError::NotFound));
    assert_eq!(reg.remove("tiny"), Err(RemoveError::Static));
    assert!(reg.get("tiny").is_some(), "statics survive everything");
}

#[test]
fn registry_rejects_conflicts_and_bad_names() {
    let reg = DynamicRegistry::new(statics_with_tiny(), Some(1 << 20));
    assert_eq!(
        reg.insert("tiny", "", scenario("tiny", 2)),
        Err(InsertError::NameTaken("tiny".into()))
    );
    reg.insert("up-a", "", scenario("up-a", 2)).unwrap();
    assert_eq!(
        reg.insert("up-a", "", scenario("up-a", 3)),
        Err(InsertError::NameTaken("up-a".into()))
    );
    assert!(matches!(
        reg.insert("bad name!", "", scenario("x", 2)),
        Err(InsertError::InvalidName(_))
    ));
    assert!(matches!(
        reg.insert("", "", scenario("x", 2)),
        Err(InsertError::InvalidName(_))
    ));
}

#[test]
fn registry_deduplicates_identical_content_across_names() {
    let reg = DynamicRegistry::new(statics_with_tiny(), Some(1 << 20));
    reg.insert("up-a", "", scenario("up-a", 2)).unwrap();
    // Same content under a different registration name: no new entry.
    assert_eq!(
        reg.insert("up-b", "", scenario("up-b", 2)).unwrap(),
        InsertOutcome::Deduplicated {
            existing: "up-a".into()
        }
    );
    // And under its own name: a retried upload is a cheap no-op.
    assert_eq!(
        reg.insert("up-a", "", scenario("up-a", 2)).unwrap(),
        InsertOutcome::Deduplicated {
            existing: "up-a".into()
        }
    );
    assert_eq!(reg.uploaded_len(), 1);
    assert!(!reg.contains("up-b"));
}

#[test]
fn registry_evicts_lru_uploads_never_statics() {
    let size = approx_scenario_bytes(&scenario("a", 10));
    // Room for two uploads and some change, not three.
    let reg = DynamicRegistry::new(statics_with_tiny(), Some(2 * size + size / 2));
    reg.insert("up-a", "", scenario("up-a", 10)).unwrap();
    reg.insert("up-b", "", scenario("up-b", 20)).unwrap();
    // Touch a so b becomes the least recently used.
    assert!(reg.get("up-a").is_some());
    match reg.insert("up-c", "", scenario("up-c", 30)).unwrap() {
        InsertOutcome::Inserted { evicted, .. } => assert_eq!(evicted, vec!["up-b".to_owned()]),
        other => panic!("expected Inserted, got {other:?}"),
    }
    assert!(reg.contains("up-a"));
    assert!(!reg.contains("up-b"));
    assert!(reg.contains("up-c"));
    assert!(reg.contains("tiny"), "static entries are never evicted");
    assert_eq!(reg.resident_bytes(), 2 * size);

    // A scenario larger than the whole budget is rejected outright.
    let tiny_budget = DynamicRegistry::new(ScenarioRegistry::new(), Some(16));
    assert!(matches!(
        tiny_budget.insert("big", "", scenario("big", 2)),
        Err(InsertError::OverBudget { .. })
    ));
}

#[test]
fn registry_accepts_row_extensions_in_place() {
    use efes_ingest::TableGrowth;
    // The same document with `extra` rows appended to the source table.
    fn grown(name: &str, extra: &str) -> IntegrationScenario {
        let body = doc(name, 2).replace(
            r#"[4, null, null]]"#,
            &format!(r#"[4, null, null]{extra}]"#),
        );
        ScenarioUpload::parse(body.as_bytes())
            .unwrap()
            .into_scenario()
            .unwrap()
    }

    let reg = DynamicRegistry::new(statics_with_tiny(), Some(1 << 20));
    reg.insert("up-a", "v1", scenario("up-a", 2)).unwrap();
    let v2 = grown("up-a", r#", [5, "Third", 1.5], [6, "Third", null]"#);
    let v2_bytes = approx_scenario_bytes(&v2);
    match reg.insert("up-a", "v2", v2).unwrap() {
        InsertOutcome::Extended {
            bytes,
            evicted,
            growth,
        } => {
            assert_eq!(bytes, v2_bytes);
            assert!(evicted.is_empty());
            assert_eq!(
                growth,
                vec![
                    TableGrowth {
                        source: Some(0),
                        table: TableId(0),
                        old_rows: 3,
                        new_rows: 5,
                    },
                    TableGrowth {
                        source: None,
                        table: TableId(0),
                        old_rows: 0,
                        new_rows: 0,
                    },
                ]
            );
        }
        other => panic!("expected Extended, got {other:?}"),
    }
    // The replacement is what lookups now see, charged at its own size.
    assert_eq!(reg.uploaded_len(), 1);
    assert_eq!(reg.resident_bytes(), v2_bytes);
    let resident = reg.get("up-a").unwrap();
    assert_eq!(resident.sources[0].instance.table(TableId(0)).len(), 5);

    // Shrinking back is not an extension: the old entry stays.
    assert_eq!(
        reg.insert("up-a", "v1 again", scenario("up-a", 2)),
        Err(InsertError::NameTaken("up-a".into()))
    );
    assert_eq!(reg.resident_bytes(), v2_bytes);
}

#[test]
fn budget_strings_parse_with_binary_suffixes() {
    assert_eq!(parse_budget("123"), Some(123));
    assert_eq!(parse_budget("64k"), Some(64 * 1024));
    assert_eq!(parse_budget("2M"), Some(2 * 1024 * 1024));
    assert_eq!(parse_budget("1g"), Some(1024 * 1024 * 1024));
    assert_eq!(parse_budget(" 8m "), Some(8 * 1024 * 1024));
    assert_eq!(parse_budget("lots"), None);
    assert_eq!(parse_budget(""), None);
    assert_eq!(parse_budget("-5"), None);
}

/// The README's "Uploading scenarios" walkthrough document, verbatim —
/// if the wire format drifts, this fails before the docs lie.
#[test]
fn readme_walkthrough_document_ingests() {
    let doc = r#"{
    "name": "shop-demo",
    "description": "two-table demo upload",
    "sources": [{
      "name": "src",
      "tables": [{
        "name": "albums",
        "attributes": [{"name": "id", "datatype": "integer"},
                       {"name": "title", "datatype": "text"},
                       {"name": "price", "datatype": "float"}],
        "csv": "id,title,price\n1,Second Helping,9.99\n2,,12.50\n"
      }],
      "constraints": [{"primary_key": {"table": "albums", "attrs": ["id"]}}]
    }],
    "target": {
      "name": "tgt",
      "tables": [{
        "name": "records",
        "attributes": [{"name": "nr", "datatype": "integer"},
                       {"name": "name", "datatype": "text"}],
        "rows": []
      }]
    },
    "correspondences": [
      {"source_table": "albums", "target_table": "records"},
      {"source_table": "albums", "source_attr": "id",
       "target_table": "records", "target_attr": "nr"},
      {"source_table": "albums", "source_attr": "title",
       "target_table": "records", "target_attr": "name"}
    ]
  }"#;
    let scenario = ScenarioUpload::parse(doc.as_bytes())
        .unwrap()
        .into_scenario()
        .unwrap();
    assert_eq!(scenario.name, "shop-demo");
    assert_eq!(scenario.sources[0].instance.table(TableId(0)).len(), 2);
    assert_eq!(scenario.correspondences.len(), 3);
}
