//! End-to-end fidelity: a generated synthetic scenario, serialised to
//! an upload document and ingested back, reproduces the exact scenario
//! — including every defect the generator's manifest records.

use efes_ingest::{scenario_fingerprint, ScenarioUpload, UploadFormat};
use efes_relational::{IntegrationScenario, TableId, Value};
use efes_synth::{generate, SynthConfig};

fn round_trip(format: UploadFormat) -> (IntegrationScenario, IntegrationScenario) {
    let cfg = SynthConfig::default().with_seed(7).with_rows(120).with_sources(2);
    let synth = generate(&cfg);
    // The defaults inject real dirt; an accidental clean scenario would
    // make this test vacuous.
    assert!(synth.manifest.total_nulls() > 0);
    assert!(synth.manifest.total_alt_format() > 0);
    assert!(synth.manifest.total_key_violations() > 0);

    let upload = ScenarioUpload::from_scenario(&synth.scenario, format);
    let json = serde_json::to_string(&upload).unwrap();
    let back = ScenarioUpload::parse(json.as_bytes())
        .unwrap()
        .into_scenario()
        .unwrap();
    (synth.scenario, back)
}

fn assert_identical(original: &IntegrationScenario, back: &IntegrationScenario) {
    assert_eq!(back.name, original.name);
    assert_eq!(back.correspondences, original.correspondences);
    assert_eq!(back.target, original.target);
    assert_eq!(back.sources, original.sources);
    assert_eq!(
        scenario_fingerprint(back),
        scenario_fingerprint(original),
        "round trip must land on the same content fingerprint (dedup relies on it)"
    );
}

#[test]
fn synth_scenario_round_trips_via_json_rows() {
    let (original, back) = round_trip(UploadFormat::JsonRows);
    assert_identical(&original, &back);
}

#[test]
fn synth_scenario_round_trips_via_csv() {
    let (original, back) = round_trip(UploadFormat::Csv);
    assert_identical(&original, &back);
}

/// The ingested copy carries the manifest's defects verbatim: with
/// duplicate injection off (duplicates copy payload cells, nulls
/// included), the NULLs found in the ingested sources are exactly the
/// NULLs the generator says it injected.
#[test]
fn ingested_copy_reproduces_manifest_null_counts() {
    let mut cfg = SynthConfig::default().with_seed(11).with_rows(150);
    cfg.dirt.duplicate_rate = 0.0;
    let synth = generate(&cfg);
    assert!(synth.manifest.total_nulls() > 0);

    let upload = ScenarioUpload::from_scenario(&synth.scenario, UploadFormat::JsonRows);
    let json = serde_json::to_string(&upload).unwrap();
    let back = ScenarioUpload::parse(json.as_bytes())
        .unwrap()
        .into_scenario()
        .unwrap();

    let mut nulls = 0usize;
    for db in &back.sources {
        for ti in 0..db.schema.tables().len() {
            for row in db.instance.table(TableId(ti)).rows() {
                nulls += row.iter().filter(|v| **v == Value::Null).count();
            }
        }
    }
    assert_eq!(nulls, synth.manifest.total_nulls());
}
