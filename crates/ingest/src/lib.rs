//! # efes-ingest — dynamic scenario ingestion
//!
//! Everything between a `POST /scenarios` request body and a scenario
//! the estimator can price:
//!
//! * [`upload`] — the JSON wire format ([`ScenarioUpload`] and
//!   friends) with a streaming parser that casts each cell to its
//!   declared datatype and appends it straight into a typed
//!   [`ColumnBuilder`](efes_relational::ColumnBuilder), so payloads
//!   land in the same column-primary representation the profiler
//!   reads — no row-major detour, rows only ever derived lazily.
//! * [`registry`] — the [`DynamicRegistry`], which layers uploaded
//!   scenarios over the compiled-in
//!   [`ScenarioRegistry`](efes::ScenarioRegistry) behind the single
//!   [`ScenarioProvider`](efes::ScenarioProvider) lookup trait:
//!   per-scenario memory accounting against a byte budget, LRU
//!   eviction of idle uploads (never static entries), and content
//!   fingerprinting so byte-identical re-uploads deduplicate onto one
//!   entry (and therefore one profile cache).
//!
//! `efes-serve` wires these into the HTTP surface; this crate stays
//! transport-free so library users can ingest documents directly.

#![warn(missing_docs)]

pub mod registry;
pub mod upload;

pub use registry::{
    approx_scenario_bytes, budget_from_env, parse_budget, scenario_fingerprint, DynamicRegistry,
    InsertError, InsertOutcome, RemoveError, TableGrowth, DEFAULT_INGEST_BUDGET,
    INGEST_BUDGET_ENV_VAR,
};
pub use upload::{
    AttributeUpload, ConstraintKindUpload, ConstraintUpload, CorrespondenceUpload, DatabaseUpload,
    ScenarioUpload, TableUpload, UploadFormat,
};

/// Why an upload document could not be turned into a scenario. All
/// variants are client errors (the server maps them to `400`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestError {
    message: String,
}

impl IngestError {
    /// An error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        IngestError {
            message: message.into(),
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for IngestError {}
