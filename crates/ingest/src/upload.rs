//! The `POST /scenarios` wire format and its streaming parser.
//!
//! A [`ScenarioUpload`] is the JSON document a client sends to register
//! a scenario: source databases, the target database, and the
//! correspondences between them, all referenced *by name* (the wire
//! knows nothing of the crate's integer ids). Table payloads travel
//! either as JSON rows (`"rows": [[1, "a", null], …]`) or as embedded
//! CSV text (`"csv": "id,name\n1,a\n"`).
//!
//! ## Streaming into typed columns
//!
//! Deserialisation never materialises a row-major `Vec<Value>` table:
//! each table's declared attribute list is parsed first, then the
//! payload is walked record by record and every cell is cast to its
//! attribute's declared [`DataType`] and pushed straight into that
//! attribute's [`ColumnBuilder`]. A parsed [`TableUpload`] therefore
//! holds finished typed [`Column`]s — the same representation
//! [`TableData`](efes_relational::TableData) keeps as its
//! column-primary source of truth, so [`ScenarioUpload::into_scenario`]
//! loads them without copying and rows are only ever derived lazily,
//! on demand.
//!
//! ## Fidelity caveats
//!
//! Cells are cast to the *declared* attribute type, so an integer
//! literal in a float column ingests as the float it denotes — which is
//! also what makes JSON round trips exact: JSON cannot distinguish
//! `3.0` from `3`. Two corners do not survive the JSON number format:
//! non-finite floats serialise as `null`, and `-0.0` loses its sign.
//! CSV payloads additionally render empty text cells and NULLs
//! identically, so an empty string ingests as NULL there.

use crate::IngestError;
use efes_relational::{
    AttrRef, Attribute, Column, ColumnBuilder, Constraint, ConstraintKind, ConstraintSet,
    Correspondence, CorrespondenceSet, DataType, Database, IntegrationScenario, Schema, SourceId,
    Table, Value,
};
use serde::{content_get, Content, DeError, Deserialize, Serialize};

/// How [`ScenarioUpload::from_scenario`] renders table payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UploadFormat {
    /// `"rows"`: a JSON array of row arrays. Exact for everything JSON
    /// numbers can carry (see the module docs for the two corners they
    /// cannot).
    #[default]
    JsonRows,
    /// `"csv"`: embedded RFC-4180-subset CSV text. Preserves non-finite
    /// floats (`NaN` parses back) but conflates empty text with NULL.
    Csv,
}

/// One declared attribute of an uploaded table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeUpload {
    /// Attribute name, unique within its table.
    pub name: String,
    /// Declared datatype; every payload cell is cast to it.
    pub datatype: DataType,
}

/// One uploaded table: declared attributes plus payload, already
/// streamed into typed columns (one per attribute, in declaration
/// order) by the parser.
#[derive(Debug, Clone, PartialEq)]
pub struct TableUpload {
    /// Table name, unique within its database.
    pub name: String,
    /// Declared attributes, in order.
    pub attributes: Vec<AttributeUpload>,
    /// The payload as typed columns, position-aligned with
    /// `attributes`. Empty-payload tables hold zero-row columns.
    pub columns: Vec<Column>,
    /// Which payload style the table arrived in (and will serialise
    /// back to).
    pub format: UploadFormat,
}

/// A named integrity constraint on an uploaded database, referencing
/// tables and attributes by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintUpload {
    /// Constraint name; synthesised from the shape when omitted.
    pub name: Option<String>,
    /// What the constraint requires.
    pub kind: ConstraintKindUpload,
}

/// The name-based twin of [`ConstraintKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintKindUpload {
    /// `{"primary_key": {"table": …, "attrs": […]}}`
    PrimaryKey {
        /// The constrained table.
        table: String,
        /// The key attributes.
        attrs: Vec<String>,
    },
    /// `{"unique": {"table": …, "attrs": […]}}`
    Unique {
        /// The constrained table.
        table: String,
        /// The unique attribute combination.
        attrs: Vec<String>,
    },
    /// `{"not_null": {"table": …, "attr": …}}`
    NotNull {
        /// The constrained table.
        table: String,
        /// The non-nullable attribute.
        attr: String,
    },
    /// `{"foreign_key": {"table": …, "attrs": […], "references": …,
    /// "referenced_attrs": […]}}`
    ForeignKey {
        /// The referencing table.
        table: String,
        /// The referencing attributes.
        attrs: Vec<String>,
        /// The referenced table.
        references: String,
        /// The referenced attributes, position-aligned with `attrs`.
        referenced_attrs: Vec<String>,
    },
}

/// One uploaded database: tables plus (optional) constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct DatabaseUpload {
    /// Database (schema) name.
    pub name: String,
    /// The tables, in declaration order.
    pub tables: Vec<TableUpload>,
    /// Declared constraints; may be empty.
    pub constraints: Vec<ConstraintUpload>,
}

/// One correspondence, by name. With `source_attr` and `target_attr`
/// both present it is an attribute correspondence; with both absent, a
/// table correspondence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrespondenceUpload {
    /// Index into the upload's `sources` array. Defaults to `0`.
    pub source: usize,
    /// The source table.
    pub source_table: String,
    /// The target table.
    pub target_table: String,
    /// Source attribute, for attribute correspondences.
    pub source_attr: Option<String>,
    /// Target attribute, for attribute correspondences.
    pub target_attr: Option<String>,
}

/// The full `POST /scenarios` document.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioUpload {
    /// Registry name for the scenario (also becomes the scenario's own
    /// name, so estimates against it are labelled consistently).
    pub name: String,
    /// One-line human description shown by `GET /scenarios`.
    pub description: String,
    /// The source databases, in order ([`CorrespondenceUpload::source`]
    /// indexes into this array).
    pub sources: Vec<DatabaseUpload>,
    /// The target database.
    pub target: DatabaseUpload,
    /// Correspondences between sources and target.
    pub correspondences: Vec<CorrespondenceUpload>,
}

// --- parsing helpers ----------------------------------------------------

fn parse_datatype(raw: &str) -> Result<DataType, DeError> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "integer" | "int" => Ok(DataType::Integer),
        "float" | "double" | "real" => Ok(DataType::Float),
        "text" | "string" | "varchar" => Ok(DataType::Text),
        "boolean" | "bool" => Ok(DataType::Boolean),
        other => Err(DeError::unknown_variant("DataType", other)),
    }
}

/// A JSON scalar cell as the [`Value`] it literally denotes, before the
/// declared-type cast.
fn scalar_value(c: &Content) -> Result<Value, DeError> {
    match c {
        Content::Null => Ok(Value::Null),
        Content::Bool(b) => Ok(Value::Bool(*b)),
        Content::I64(i) => Ok(Value::Int(*i)),
        Content::U64(u) => i64::try_from(*u)
            .map(Value::Int)
            .map_err(|_| DeError::custom(format!("integer cell {u} is out of i64 range"))),
        Content::F64(f) => Ok(Value::Float(*f)),
        Content::Str(s) => Ok(Value::Text(s.clone())),
        Content::Seq(_) | Content::Map(_) => {
            Err(DeError::expected("a scalar JSON value for a table cell"))
        }
    }
}

/// Cast one raw cell to its attribute's declared datatype, with full
/// location context on failure.
fn cast_cell(
    table: &str,
    attr: &AttributeUpload,
    row: usize,
    raw: Value,
) -> Result<Value, DeError> {
    attr.datatype.try_cast(&raw).ok_or_else(|| {
        DeError::custom(format!(
            "table `{table}`, attribute `{}`, row {row}: cannot cast {raw:?} to {}",
            attr.name, attr.datatype
        ))
    })
}

/// Walk CSV `text` record by record (record 0 is the header), calling
/// `on_record` with each complete record. Memory stays O(record), never
/// O(table) — this is what lets a large upload stream straight into
/// column builders. Same dialect as `efes_relational::csv::parse`:
/// quoted fields, `""` escapes, `\n` or `\r\n` endings, `,` delimiter.
fn stream_csv(
    text: &str,
    mut on_record: impl FnMut(usize, Vec<String>) -> Result<(), DeError>,
) -> Result<(), DeError> {
    let mut field = String::new();
    let mut record: Vec<String> = Vec::new();
    let mut records = 0usize;
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    field.push(c);
                    line += 1;
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(DeError::custom(format!(
                            "csv line {line}: quote inside unquoted field"
                        )));
                    }
                    in_quotes = true;
                }
                ',' => record.push(std::mem::take(&mut field)),
                '\r' => {}
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    on_record(records, std::mem::take(&mut record))?;
                    records += 1;
                    line += 1;
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(DeError::custom(format!(
            "csv line {line}: unterminated quoted field"
        )));
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        on_record(records, record)?;
        records += 1;
    }
    if records == 0 {
        return Err(DeError::custom("csv payload is empty (no header)"));
    }
    Ok(())
}

/// Quote a CSV field if the dialect requires it.
fn csv_quote(field: &str) -> String {
    if field.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

// --- serde: AttributeUpload ---------------------------------------------

impl Serialize for AttributeUpload {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (Content::Str("name".into()), Content::Str(self.name.clone())),
            (
                Content::Str("datatype".into()),
                Content::Str(self.datatype.to_string()),
            ),
        ])
    }
}

impl Deserialize for AttributeUpload {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let map = content
            .as_map()
            .ok_or_else(|| DeError::expected("JSON object for `AttributeUpload`"))?;
        let name = match content_get(map, "name") {
            Some(v) => String::from_content(v)?,
            None => return Err(DeError::missing_field("AttributeUpload", "name")),
        };
        let datatype = match content_get(map, "datatype") {
            Some(v) => parse_datatype(
                v.as_str()
                    .ok_or_else(|| DeError::expected("a string datatype name"))?,
            )?,
            None => return Err(DeError::missing_field("AttributeUpload", "datatype")),
        };
        Ok(AttributeUpload { name, datatype })
    }
}

// --- serde: TableUpload -------------------------------------------------

impl Serialize for TableUpload {
    fn to_content(&self) -> Content {
        let mut map = vec![
            (Content::Str("name".into()), Content::Str(self.name.clone())),
            (
                Content::Str("attributes".into()),
                self.attributes.to_content(),
            ),
        ];
        let len = self.columns.first().map(Column::len).unwrap_or(0);
        match self.format {
            UploadFormat::JsonRows => {
                let rows: Vec<Content> = (0..len)
                    .map(|i| {
                        Content::Seq(
                            self.columns
                                .iter()
                                .map(|c| match c.value(i).to_value() {
                                    Value::Null => Content::Null,
                                    Value::Int(v) => Content::I64(v),
                                    Value::Float(v) => Content::F64(v),
                                    Value::Text(s) => Content::Str(s),
                                    Value::Bool(b) => Content::Bool(b),
                                })
                                .collect(),
                        )
                    })
                    .collect();
                map.push((Content::Str("rows".into()), Content::Seq(rows)));
            }
            UploadFormat::Csv => {
                let mut text = self
                    .attributes
                    .iter()
                    .map(|a| csv_quote(&a.name))
                    .collect::<Vec<_>>()
                    .join(",");
                text.push('\n');
                for i in 0..len {
                    let rendered = self
                        .columns
                        .iter()
                        .map(|c| csv_quote(&c.value(i).render()))
                        .collect::<Vec<_>>()
                        .join(",");
                    text.push_str(&rendered);
                    text.push('\n');
                }
                map.push((Content::Str("csv".into()), Content::Str(text)));
            }
        }
        Content::Map(map)
    }
}

impl Deserialize for TableUpload {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let map = content
            .as_map()
            .ok_or_else(|| DeError::expected("JSON object for `TableUpload`"))?;
        let name = match content_get(map, "name") {
            Some(v) => String::from_content(v)?,
            None => return Err(DeError::missing_field("TableUpload", "name")),
        };
        let attributes = match content_get(map, "attributes") {
            Some(v) => Vec::<AttributeUpload>::from_content(v)?,
            None => return Err(DeError::missing_field("TableUpload", "attributes")),
        };
        let rows = content_get(map, "rows");
        let csv = content_get(map, "csv");
        if rows.is_some() && csv.is_some() {
            return Err(DeError::custom(format!(
                "table `{name}`: give `rows` or `csv`, not both"
            )));
        }

        let mut builders: Vec<ColumnBuilder> =
            attributes.iter().map(|_| ColumnBuilder::new()).collect();
        let mut format = UploadFormat::JsonRows;

        if let Some(rows) = rows {
            let rows = rows
                .as_seq()
                .ok_or_else(|| DeError::expected("a JSON array for `rows`"))?;
            for b in &mut builders {
                *b = ColumnBuilder::with_capacity(rows.len());
            }
            for (i, row) in rows.iter().enumerate() {
                let cells = row
                    .as_seq()
                    .ok_or_else(|| DeError::expected("a JSON array for each row"))?;
                if cells.len() != attributes.len() {
                    return Err(DeError::custom(format!(
                        "table `{name}`, row {i}: {} cells, {} attributes declared",
                        cells.len(),
                        attributes.len()
                    )));
                }
                for ((cell, attr), builder) in
                    cells.iter().zip(&attributes).zip(&mut builders)
                {
                    let raw = scalar_value(cell)?;
                    builder.push(cast_cell(&name, attr, i, raw)?);
                }
            }
        } else if let Some(csv) = csv {
            format = UploadFormat::Csv;
            let text = csv
                .as_str()
                .ok_or_else(|| DeError::expected("a string for `csv`"))?;
            stream_csv(text, |record, fields| {
                if record == 0 {
                    // Header: must name the declared attributes, in order.
                    let declared: Vec<&str> =
                        attributes.iter().map(|a| a.name.as_str()).collect();
                    if fields != declared {
                        return Err(DeError::custom(format!(
                            "table `{name}`: csv header {fields:?} does not match declared \
                             attributes {declared:?}"
                        )));
                    }
                    return Ok(());
                }
                let row = record - 1;
                if fields.len() != attributes.len() {
                    return Err(DeError::custom(format!(
                        "table `{name}`, csv row {row}: {} fields, {} attributes declared",
                        fields.len(),
                        attributes.len()
                    )));
                }
                for ((field, attr), builder) in
                    fields.into_iter().zip(&attributes).zip(&mut builders)
                {
                    let value = if field.is_empty() {
                        Value::Null
                    } else {
                        cast_cell(&name, attr, row, Value::Text(field))?
                    };
                    builder.push(value);
                }
                Ok(())
            })?;
        }

        Ok(TableUpload {
            name,
            attributes,
            columns: builders.into_iter().map(ColumnBuilder::finish).collect(),
            format,
        })
    }
}

// --- serde: ConstraintUpload --------------------------------------------

fn names_content(names: &[String]) -> Content {
    Content::Seq(names.iter().cloned().map(Content::Str).collect())
}

impl Serialize for ConstraintUpload {
    fn to_content(&self) -> Content {
        let mut map = Vec::new();
        if let Some(name) = &self.name {
            map.push((Content::Str("name".into()), Content::Str(name.clone())));
        }
        let (key, body) = match &self.kind {
            ConstraintKindUpload::PrimaryKey { table, attrs } => (
                "primary_key",
                vec![
                    (Content::Str("table".into()), Content::Str(table.clone())),
                    (Content::Str("attrs".into()), names_content(attrs)),
                ],
            ),
            ConstraintKindUpload::Unique { table, attrs } => (
                "unique",
                vec![
                    (Content::Str("table".into()), Content::Str(table.clone())),
                    (Content::Str("attrs".into()), names_content(attrs)),
                ],
            ),
            ConstraintKindUpload::NotNull { table, attr } => (
                "not_null",
                vec![
                    (Content::Str("table".into()), Content::Str(table.clone())),
                    (Content::Str("attr".into()), Content::Str(attr.clone())),
                ],
            ),
            ConstraintKindUpload::ForeignKey {
                table,
                attrs,
                references,
                referenced_attrs,
            } => (
                "foreign_key",
                vec![
                    (Content::Str("table".into()), Content::Str(table.clone())),
                    (Content::Str("attrs".into()), names_content(attrs)),
                    (
                        Content::Str("references".into()),
                        Content::Str(references.clone()),
                    ),
                    (
                        Content::Str("referenced_attrs".into()),
                        names_content(referenced_attrs),
                    ),
                ],
            ),
        };
        map.push((Content::Str(key.into()), Content::Map(body)));
        Content::Map(map)
    }
}

impl Deserialize for ConstraintUpload {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let map = content
            .as_map()
            .ok_or_else(|| DeError::expected("JSON object for `ConstraintUpload`"))?;
        let name = match content_get(map, "name") {
            Some(v) => Some(String::from_content(v)?),
            None => None,
        };
        let body = |key: &str| -> Result<&[(Content, Content)], DeError> {
            content_get(map, key)
                .and_then(Content::as_map)
                .ok_or_else(|| DeError::expected("a JSON object constraint body"))
        };
        let field = |m: &[(Content, Content)], key: &str| -> Result<String, DeError> {
            match content_get(m, key) {
                Some(v) => String::from_content(v),
                None => Err(DeError::missing_field("ConstraintUpload", key)),
            }
        };
        let list = |m: &[(Content, Content)], key: &str| -> Result<Vec<String>, DeError> {
            match content_get(m, key) {
                Some(v) => Vec::<String>::from_content(v),
                None => Err(DeError::missing_field("ConstraintUpload", key)),
            }
        };
        let kind = if content_get(map, "primary_key").is_some() {
            let m = body("primary_key")?;
            ConstraintKindUpload::PrimaryKey {
                table: field(m, "table")?,
                attrs: list(m, "attrs")?,
            }
        } else if content_get(map, "unique").is_some() {
            let m = body("unique")?;
            ConstraintKindUpload::Unique {
                table: field(m, "table")?,
                attrs: list(m, "attrs")?,
            }
        } else if content_get(map, "not_null").is_some() {
            let m = body("not_null")?;
            ConstraintKindUpload::NotNull {
                table: field(m, "table")?,
                attr: field(m, "attr")?,
            }
        } else if content_get(map, "foreign_key").is_some() {
            let m = body("foreign_key")?;
            ConstraintKindUpload::ForeignKey {
                table: field(m, "table")?,
                attrs: list(m, "attrs")?,
                references: field(m, "references")?,
                referenced_attrs: list(m, "referenced_attrs")?,
            }
        } else {
            return Err(DeError::expected(
                "one of `primary_key`, `unique`, `not_null`, `foreign_key`",
            ));
        };
        Ok(ConstraintUpload { name, kind })
    }
}

// --- serde: DatabaseUpload ----------------------------------------------

impl Serialize for DatabaseUpload {
    fn to_content(&self) -> Content {
        let mut map = vec![
            (Content::Str("name".into()), Content::Str(self.name.clone())),
            (Content::Str("tables".into()), self.tables.to_content()),
        ];
        if !self.constraints.is_empty() {
            map.push((
                Content::Str("constraints".into()),
                self.constraints.to_content(),
            ));
        }
        Content::Map(map)
    }
}

impl Deserialize for DatabaseUpload {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let map = content
            .as_map()
            .ok_or_else(|| DeError::expected("JSON object for `DatabaseUpload`"))?;
        let name = match content_get(map, "name") {
            Some(v) => String::from_content(v)?,
            None => return Err(DeError::missing_field("DatabaseUpload", "name")),
        };
        let tables = match content_get(map, "tables") {
            Some(v) => Vec::<TableUpload>::from_content(v)?,
            None => return Err(DeError::missing_field("DatabaseUpload", "tables")),
        };
        let constraints = match content_get(map, "constraints") {
            Some(v) => Vec::<ConstraintUpload>::from_content(v)?,
            None => Vec::new(),
        };
        Ok(DatabaseUpload {
            name,
            tables,
            constraints,
        })
    }
}

// --- serde: CorrespondenceUpload ----------------------------------------

impl Serialize for CorrespondenceUpload {
    fn to_content(&self) -> Content {
        let mut map = vec![
            (Content::Str("source".into()), Content::U64(self.source as u64)),
            (
                Content::Str("source_table".into()),
                Content::Str(self.source_table.clone()),
            ),
            (
                Content::Str("target_table".into()),
                Content::Str(self.target_table.clone()),
            ),
        ];
        if let Some(a) = &self.source_attr {
            map.push((Content::Str("source_attr".into()), Content::Str(a.clone())));
        }
        if let Some(a) = &self.target_attr {
            map.push((Content::Str("target_attr".into()), Content::Str(a.clone())));
        }
        Content::Map(map)
    }
}

impl Deserialize for CorrespondenceUpload {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let map = content
            .as_map()
            .ok_or_else(|| DeError::expected("JSON object for `CorrespondenceUpload`"))?;
        let source = match content_get(map, "source") {
            Some(v) => usize::from_content(v)?,
            None => 0,
        };
        let source_table = match content_get(map, "source_table") {
            Some(v) => String::from_content(v)?,
            None => return Err(DeError::missing_field("CorrespondenceUpload", "source_table")),
        };
        let target_table = match content_get(map, "target_table") {
            Some(v) => String::from_content(v)?,
            None => return Err(DeError::missing_field("CorrespondenceUpload", "target_table")),
        };
        let source_attr = match content_get(map, "source_attr") {
            Some(v) => Some(String::from_content(v)?),
            None => None,
        };
        let target_attr = match content_get(map, "target_attr") {
            Some(v) => Some(String::from_content(v)?),
            None => None,
        };
        Ok(CorrespondenceUpload {
            source,
            source_table,
            target_table,
            source_attr,
            target_attr,
        })
    }
}

// --- serde: ScenarioUpload ----------------------------------------------

impl Serialize for ScenarioUpload {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (Content::Str("name".into()), Content::Str(self.name.clone())),
            (
                Content::Str("description".into()),
                Content::Str(self.description.clone()),
            ),
            (Content::Str("sources".into()), self.sources.to_content()),
            (Content::Str("target".into()), self.target.to_content()),
            (
                Content::Str("correspondences".into()),
                self.correspondences.to_content(),
            ),
        ])
    }
}

impl Deserialize for ScenarioUpload {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let map = content
            .as_map()
            .ok_or_else(|| DeError::expected("JSON object for `ScenarioUpload`"))?;
        let name = match content_get(map, "name") {
            Some(v) => String::from_content(v)?,
            None => return Err(DeError::missing_field("ScenarioUpload", "name")),
        };
        let description = match content_get(map, "description") {
            Some(v) => String::from_content(v)?,
            None => String::new(),
        };
        let sources = match content_get(map, "sources") {
            Some(v) => Vec::<DatabaseUpload>::from_content(v)?,
            None => return Err(DeError::missing_field("ScenarioUpload", "sources")),
        };
        let target = match content_get(map, "target") {
            Some(v) => DatabaseUpload::from_content(v)?,
            None => return Err(DeError::missing_field("ScenarioUpload", "target")),
        };
        let correspondences = match content_get(map, "correspondences") {
            Some(v) => Vec::<CorrespondenceUpload>::from_content(v)?,
            None => Vec::new(),
        };
        Ok(ScenarioUpload {
            name,
            description,
            sources,
            target,
            correspondences,
        })
    }
}

// --- assembly -----------------------------------------------------------

impl DatabaseUpload {
    /// Assemble the database: build the schema, resolve constraint names
    /// to ids, and load the typed columns without copying them.
    ///
    /// Declared constraints are *not* validated against the data —
    /// sources legitimately ship dirt (that is the whole point of
    /// estimating cleaning effort), and the synthetic generator's
    /// sources do too.
    fn into_database(self) -> Result<Database, IngestError> {
        let mut schema = Schema::new(&self.name);
        for t in &self.tables {
            let attrs = t
                .attributes
                .iter()
                .map(|a| Attribute::new(&a.name, a.datatype))
                .collect();
            schema.add_table(Table::new(&t.name, attrs)).map_err(|e| {
                IngestError::new(format!("database `{}`: {e}", self.name))
            })?;
        }
        let mut constraints = ConstraintSet::new();
        for c in &self.constraints {
            let (name, kind) = c.resolve(&self.name, &schema)?;
            let constraint = Constraint::new(name, kind);
            constraint.check_against(&schema).map_err(|e| {
                IngestError::new(format!("database `{}`: {e}", self.name))
            })?;
            constraints.push(constraint);
        }
        let mut db = Database::new(schema, constraints);
        for t in self.tables {
            db.load_columns_by_name(&t.name, t.columns).map_err(|e| {
                IngestError::new(format!(
                    "database `{}`, table `{}`: {e}",
                    self.name, t.name
                ))
            })?;
        }
        Ok(db)
    }

    /// The upload form of an assembled database, for clients and tests.
    pub fn from_database(db: &Database, format: UploadFormat) -> Self {
        let tables = db
            .schema
            .tables()
            .iter()
            .enumerate()
            .map(|(ti, t)| {
                let data = db.instance.table(efes_relational::TableId(ti));
                let columns: Vec<Column> = (0..t.arity())
                    .map(|ai| match data.column_store(efes_relational::AttrId(ai)) {
                        Some(col) => col.clone(),
                        None => Column::from_cells(Vec::new()),
                    })
                    .collect();
                TableUpload {
                    name: t.name.clone(),
                    attributes: t
                        .attributes
                        .iter()
                        .map(|a| AttributeUpload {
                            name: a.name.clone(),
                            datatype: a.datatype,
                        })
                        .collect(),
                    columns,
                    format,
                }
            })
            .collect();
        let table_name = |id: efes_relational::TableId| db.schema.table(id).name.clone();
        let attr_names = |id: efes_relational::TableId, attrs: &[efes_relational::AttrId]| {
            attrs
                .iter()
                .map(|a| db.schema.table(id).attribute(*a).name.clone())
                .collect::<Vec<_>>()
        };
        let constraints = db
            .constraints
            .iter()
            .map(|c| ConstraintUpload {
                name: Some(c.name.clone()),
                kind: match &c.kind {
                    ConstraintKind::PrimaryKey { table, attrs } => {
                        ConstraintKindUpload::PrimaryKey {
                            table: table_name(*table),
                            attrs: attr_names(*table, attrs),
                        }
                    }
                    ConstraintKind::Unique { table, attrs } => ConstraintKindUpload::Unique {
                        table: table_name(*table),
                        attrs: attr_names(*table, attrs),
                    },
                    ConstraintKind::NotNull { table, attr } => ConstraintKindUpload::NotNull {
                        table: table_name(*table),
                        attr: db.schema.table(*table).attribute(*attr).name.clone(),
                    },
                    ConstraintKind::ForeignKey {
                        from_table,
                        from_attrs,
                        to_table,
                        to_attrs,
                    } => ConstraintKindUpload::ForeignKey {
                        table: table_name(*from_table),
                        attrs: attr_names(*from_table, from_attrs),
                        references: table_name(*to_table),
                        referenced_attrs: attr_names(*to_table, to_attrs),
                    },
                },
            })
            .collect();
        DatabaseUpload {
            name: db.name().to_owned(),
            tables,
            constraints,
        }
    }
}

impl ConstraintUpload {
    fn resolve(
        &self,
        db: &str,
        schema: &Schema,
    ) -> Result<(String, ConstraintKind), IngestError> {
        let table_id = |name: &str| {
            schema.table_id(name).ok_or_else(|| {
                IngestError::new(format!(
                    "database `{db}`: constraint references unknown table `{name}`"
                ))
            })
        };
        let attr_id = |tid: efes_relational::TableId, name: &str| {
            schema.table(tid).attr_id(name).ok_or_else(|| {
                IngestError::new(format!(
                    "database `{db}`: constraint references unknown attribute `{}.{name}`",
                    schema.table(tid).name
                ))
            })
        };
        let attr_ids = |tid: efes_relational::TableId, names: &[String]| {
            names
                .iter()
                .map(|n| attr_id(tid, n))
                .collect::<Result<Vec<_>, _>>()
        };
        Ok(match &self.kind {
            ConstraintKindUpload::PrimaryKey { table, attrs } => {
                let t = table_id(table)?;
                let name = self
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("{table}_pk"));
                (name, ConstraintKind::PrimaryKey { table: t, attrs: attr_ids(t, attrs)? })
            }
            ConstraintKindUpload::Unique { table, attrs } => {
                let t = table_id(table)?;
                let name = self
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("{table}_{}_unique", attrs.join("_")));
                (name, ConstraintKind::Unique { table: t, attrs: attr_ids(t, attrs)? })
            }
            ConstraintKindUpload::NotNull { table, attr } => {
                let t = table_id(table)?;
                let name = self
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("{table}_{attr}_not_null"));
                (name, ConstraintKind::NotNull { table: t, attr: attr_id(t, attr)? })
            }
            ConstraintKindUpload::ForeignKey {
                table,
                attrs,
                references,
                referenced_attrs,
            } => {
                let from = table_id(table)?;
                let to = table_id(references)?;
                let name = self
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("{table}_{}_fk", attrs.join("_")));
                (
                    name,
                    ConstraintKind::ForeignKey {
                        from_table: from,
                        from_attrs: attr_ids(from, attrs)?,
                        to_table: to,
                        to_attrs: attr_ids(to, referenced_attrs)?,
                    },
                )
            }
        })
    }
}

impl ScenarioUpload {
    /// Parse an upload document from raw request bytes.
    pub fn parse(bytes: &[u8]) -> Result<Self, IngestError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| IngestError::new("request body is not valid UTF-8"))?;
        serde_json::from_str::<ScenarioUpload>(text)
            .map_err(|e| IngestError::new(format!("invalid upload document: {e}")))
    }

    /// Assemble the full [`IntegrationScenario`]: databases, resolved
    /// correspondences, and the scenario-level well-formedness check.
    /// The upload's `name` becomes the scenario's name.
    pub fn into_scenario(self) -> Result<IntegrationScenario, IngestError> {
        if self.sources.is_empty() {
            return Err(IngestError::new("upload declares no source databases"));
        }
        let n_sources = self.sources.len();
        let sources: Vec<Database> = self
            .sources
            .into_iter()
            .map(DatabaseUpload::into_database)
            .collect::<Result<_, _>>()?;
        let target = self.target.into_database()?;
        let mut correspondences = CorrespondenceSet::new();
        for (i, c) in self.correspondences.iter().enumerate() {
            if c.source >= n_sources {
                return Err(IngestError::new(format!(
                    "correspondence {i}: source index {} out of range ({n_sources} sources)",
                    c.source
                )));
            }
            let src_schema = &sources[c.source].schema;
            let st = src_schema.table_id(&c.source_table).ok_or_else(|| {
                IngestError::new(format!(
                    "correspondence {i}: unknown source table `{}`",
                    c.source_table
                ))
            })?;
            let tt = target.schema.table_id(&c.target_table).ok_or_else(|| {
                IngestError::new(format!(
                    "correspondence {i}: unknown target table `{}`",
                    c.target_table
                ))
            })?;
            match (&c.source_attr, &c.target_attr) {
                (None, None) => correspondences.push(Correspondence::Table {
                    source: SourceId(c.source),
                    source_table: st,
                    target_table: tt,
                }),
                (Some(sa), Some(ta)) => {
                    let said = src_schema.table(st).attr_id(sa).ok_or_else(|| {
                        IngestError::new(format!(
                            "correspondence {i}: unknown source attribute `{}.{sa}`",
                            c.source_table
                        ))
                    })?;
                    let taid = target.schema.table(tt).attr_id(ta).ok_or_else(|| {
                        IngestError::new(format!(
                            "correspondence {i}: unknown target attribute `{}.{ta}`",
                            c.target_table
                        ))
                    })?;
                    correspondences.push(Correspondence::Attribute {
                        source: SourceId(c.source),
                        source_attr: AttrRef { table: st, attr: said },
                        target_attr: AttrRef { table: tt, attr: taid },
                    });
                }
                _ => {
                    return Err(IngestError::new(format!(
                        "correspondence {i}: `source_attr` and `target_attr` must be given \
                         together (or both omitted for a table correspondence)"
                    )))
                }
            }
        }
        IntegrationScenario::multi_source(self.name, sources, target, correspondences)
            .map_err(|e| IngestError::new(format!("scenario is not well-formed: {e}")))
    }

    /// The upload form of an existing scenario — how test harnesses, the
    /// CI smoke job, and the example client produce upload documents.
    pub fn from_scenario(scenario: &IntegrationScenario, format: UploadFormat) -> Self {
        let mut correspondences = Vec::new();
        for c in scenario.correspondences.iter() {
            let src = &scenario.sources[c.source().0].schema;
            correspondences.push(match c {
                Correspondence::Table {
                    source,
                    source_table,
                    target_table,
                } => CorrespondenceUpload {
                    source: source.0,
                    source_table: src.table(*source_table).name.clone(),
                    target_table: scenario.target.schema.table(*target_table).name.clone(),
                    source_attr: None,
                    target_attr: None,
                },
                Correspondence::Attribute {
                    source,
                    source_attr,
                    target_attr,
                } => CorrespondenceUpload {
                    source: source.0,
                    source_table: src.table(source_attr.table).name.clone(),
                    target_table: scenario
                        .target
                        .schema
                        .table(target_attr.table)
                        .name
                        .clone(),
                    source_attr: Some(
                        src.table(source_attr.table)
                            .attribute(source_attr.attr)
                            .name
                            .clone(),
                    ),
                    target_attr: Some(
                        scenario
                            .target
                            .schema
                            .table(target_attr.table)
                            .attribute(target_attr.attr)
                            .name
                            .clone(),
                    ),
                },
            });
        }
        ScenarioUpload {
            name: scenario.name.clone(),
            description: String::new(),
            sources: scenario
                .sources
                .iter()
                .map(|db| DatabaseUpload::from_database(db, format))
                .collect(),
            target: DatabaseUpload::from_database(&scenario.target, format),
            correspondences,
        }
    }
}
