//! The [`DynamicRegistry`]: uploaded scenarios layered over the static
//! [`ScenarioRegistry`], with memory accounting, LRU eviction and
//! content-fingerprint deduplication.
//!
//! The server resolves every scenario name through one
//! [`ScenarioProvider`]; this type is the composition it actually uses.
//! Static entries always win name lookups and are never evicted —
//! uploads are the guests here. Each accepted upload is charged an
//! approximate resident size against a byte budget
//! ([`INGEST_BUDGET_ENV_VAR`], default 256 MiB); when an insert would
//! overflow the budget, the least-recently-*used* uploaded scenarios
//! (an estimate touches, a re-upload touches, a listing does not) are
//! evicted until it fits. A 128-bit content fingerprint — schemas,
//! constraints, correspondences, and every cell, but *not* the
//! registration name — lets a byte-identical re-upload collapse onto
//! the existing entry instead of storing a second copy, so the existing
//! entry's `ProfileCache` keeps serving both.

use crate::IngestError;
use efes::{ScenarioInfo, ScenarioProvider, ScenarioRegistry};
use efes_relational::{AttrId, Database, IntegrationScenario, TableId, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Environment variable read for the default ingest budget, in bytes.
/// Accepts a plain integer or a `k`/`m`/`g` binary suffix
/// (`EFES_INGEST_BUDGET=512m`). Unparsable values fall back to
/// [`DEFAULT_INGEST_BUDGET`] with a warning on stderr.
pub const INGEST_BUDGET_ENV_VAR: &str = "EFES_INGEST_BUDGET";

/// Default ingest budget when neither the server config nor
/// [`INGEST_BUDGET_ENV_VAR`] says otherwise: 256 MiB.
pub const DEFAULT_INGEST_BUDGET: usize = 256 * 1024 * 1024;

/// Parse a budget string: plain bytes, or a `k`/`m`/`g` binary suffix
/// (case-insensitive).
pub fn parse_budget(raw: &str) -> Option<usize> {
    let raw = raw.trim();
    let (digits, shift) = match raw.char_indices().last()? {
        (i, 'k') | (i, 'K') => (&raw[..i], 10),
        (i, 'm') | (i, 'M') => (&raw[..i], 20),
        (i, 'g') | (i, 'G') => (&raw[..i], 30),
        _ => (raw, 0),
    };
    let n: usize = digits.trim().parse().ok()?;
    n.checked_shl(shift)
}

/// The budget from [`INGEST_BUDGET_ENV_VAR`], or the default.
pub fn budget_from_env() -> usize {
    match std::env::var(INGEST_BUDGET_ENV_VAR) {
        Ok(raw) => parse_budget(&raw).unwrap_or_else(|| {
            eprintln!(
                "warning: unparsable {INGEST_BUDGET_ENV_VAR}={raw:?}; using default \
                 {DEFAULT_INGEST_BUDGET} bytes"
            );
            DEFAULT_INGEST_BUDGET
        }),
        Err(_) => DEFAULT_INGEST_BUDGET,
    }
}

// --- fingerprint and sizing ---------------------------------------------

/// Two independent 64-bit FNV-1a streams, combined into a `u128`.
/// Collision of both 64-bit halves on different content is vanishingly
/// unlikely, and [`DynamicRegistry::insert`] still deep-compares before
/// deduplicating, so a collision can never alias two scenarios.
struct Fnv128 {
    lo: u64,
    hi: u64,
}

impl Fnv128 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        // Standard FNV offset basis for one stream; a distinct basis
        // (the offset basis XOR a fixed constant, run through one FNV
        // step) decorrelates the second.
        Fnv128 {
            lo: 0xcbf2_9ce4_8422_2325,
            hi: 0xaf63_bd4c_8601_b7df,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lo = (self.lo ^ u64::from(b)).wrapping_mul(Self::PRIME);
            self.hi = (self.hi ^ u64::from(b.wrapping_add(0x9e))).wrapping_mul(Self::PRIME);
        }
    }

    fn write_str(&mut self, s: &str) {
        self.write(&(s.len() as u64).to_le_bytes());
        self.write(s.as_bytes());
    }

    fn finish(&self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }
}

fn hash_cell(h: &mut Fnv128, v: &Value) {
    match v {
        Value::Null => h.write(&[0]),
        Value::Int(i) => {
            h.write(&[1]);
            h.write(&i.to_le_bytes());
        }
        Value::Float(f) => {
            h.write(&[2]);
            h.write(&f.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            h.write(&[3]);
            h.write_str(s);
        }
        Value::Bool(b) => h.write(&[4, u8::from(*b)]),
    }
}

fn hash_database(h: &mut Fnv128, db: &Database) {
    h.write_str(db.name());
    for (ti, table) in db.schema.tables().iter().enumerate() {
        h.write_str(&table.name);
        for attr in &table.attributes {
            h.write_str(&attr.name);
            h.write_str(&attr.datatype.to_string());
        }
        let data = db.instance.table(TableId(ti));
        h.write(&(data.len() as u64).to_le_bytes());
        for ai in 0..table.arity() {
            match data.column_store(AttrId(ai)) {
                // Column-primary (every uploaded scenario): hash the
                // columns directly, never materialising rows.
                Some(col) => {
                    for i in 0..col.len() {
                        hash_cell(h, &col.value(i).to_value());
                    }
                }
                None => {
                    for row in data.rows() {
                        hash_cell(h, &row[ai]);
                    }
                }
            }
        }
    }
    // Constraint and correspondence structure ride through their stable
    // JSON form rather than a second hand-rolled traversal.
    h.write_str(
        &serde_json::to_string(&db.constraints).expect("constraint sets always serialize"),
    );
}

/// A 128-bit content fingerprint of a scenario: database names, table
/// and attribute declarations, constraints, correspondences, and every
/// cell value (type-tagged, bit-exact for floats). The scenario's own
/// registration `name` and description are deliberately excluded, so
/// the same data uploaded under two names deduplicates.
pub fn scenario_fingerprint(scenario: &IntegrationScenario) -> u128 {
    let mut h = Fnv128::new();
    h.write(&(scenario.sources.len() as u64).to_le_bytes());
    for db in &scenario.sources {
        hash_database(&mut h, db);
    }
    hash_database(&mut h, &scenario.target);
    h.write_str(
        &serde_json::to_string(&scenario.correspondences)
            .expect("correspondence sets always serialize"),
    );
    h.finish()
}

/// Approximate resident bytes of a scenario's data: per cell, the
/// row-slot cost (a [`Value`]) plus the typed column cost (numeric
/// word, dictionary code, null-bitmap share), and text payload counted
/// twice (dictionary bytes plus the row-form string). Deliberately a
/// slight over-estimate — the budget is a safety rail, not an
/// allocator.
pub fn approx_scenario_bytes(scenario: &IntegrationScenario) -> usize {
    fn db_bytes(db: &Database) -> usize {
        let per_cell = std::mem::size_of::<Value>() + 12;
        let mut total = 0usize;
        for (ti, table) in db.schema.tables().iter().enumerate() {
            let data = db.instance.table(TableId(ti));
            total += data.len() * table.arity() * per_cell;
            for ai in 0..table.arity() {
                match data.column_store(AttrId(ai)) {
                    Some(col) => {
                        for i in 0..col.len() {
                            if let efes_relational::ValueRef::Text(s) = col.value(i) {
                                total += 2 * s.len();
                            }
                        }
                    }
                    None => {
                        for row in data.rows() {
                            if let Value::Text(s) = &row[ai] {
                                total += 2 * s.len();
                            }
                        }
                    }
                }
            }
        }
        total
    }
    scenario.sources.iter().map(db_bytes).sum::<usize>() + db_bytes(&scenario.target)
}

// --- the registry -------------------------------------------------------

struct Entry {
    scenario: Arc<IntegrationScenario>,
    description: String,
    bytes: usize,
    fingerprint: u128,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    entries: BTreeMap<String, Entry>,
    resident: usize,
}

/// Uploaded scenarios layered over the static registry. See the module
/// docs for the eviction and deduplication rules.
pub struct DynamicRegistry {
    statics: ScenarioRegistry,
    budget: usize,
    clock: AtomicU64,
    inner: Mutex<Inner>,
}

/// How one table grew in an extension upload (see
/// [`InsertOutcome::Extended`]). Unchanged tables are listed too, with
/// `old_rows == new_rows`, so consumers can walk the full table set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableGrowth {
    /// Which database: `Some(i)` for source `i`, `None` for the target.
    pub source: Option<usize>,
    /// The table within that database.
    pub table: TableId,
    /// Rows the previous upload had.
    pub old_rows: usize,
    /// Rows the new upload has (`>= old_rows`).
    pub new_rows: usize,
}

/// What [`DynamicRegistry::insert`] did with an accepted upload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// A new entry was stored.
    Inserted {
        /// Resident bytes charged against the budget.
        bytes: usize,
        /// Names of uploaded scenarios evicted to make room, in
        /// eviction order. Their profile caches should be dropped.
        evicted: Vec<String>,
    },
    /// The content fingerprint (and a deep comparison) matched an
    /// existing uploaded entry — nothing was stored.
    Deduplicated {
        /// Name of the existing entry the upload collapsed onto.
        existing: String,
    },
    /// An upload under an existing uploaded name whose every table is a
    /// row-wise extension of the previous content (same schemas,
    /// constraints and correspondences; every column a bit-exact prefix
    /// of the new one). The entry was replaced in place; retained
    /// partial profiles can absorb just the appended rows.
    Extended {
        /// Resident bytes now charged for the replacement entry.
        bytes: usize,
        /// Names of *other* uploaded scenarios evicted to make room.
        evicted: Vec<String>,
        /// Per-table growth, covering every table of every database.
        growth: Vec<TableGrowth>,
    },
}

/// If `new` extends `old` — identical databases, schemas, constraints
/// and correspondences except that tables may have gained trailing rows
/// (every old column a bit-exact prefix of the new one) — the
/// per-table growth list. `None` means `new` is not a pure extension.
fn extension_growth(
    old: &IntegrationScenario,
    new: &IntegrationScenario,
) -> Option<Vec<TableGrowth>> {
    if old.sources.len() != new.sources.len() || old.correspondences != new.correspondences {
        return None;
    }
    let mut growth = Vec::new();
    let pairs = old
        .sources
        .iter()
        .zip(&new.sources)
        .enumerate()
        .map(|(i, (a, b))| (Some(i), a, b))
        .chain(std::iter::once((None, &old.target, &new.target)));
    for (source, old_db, new_db) in pairs {
        if old_db.name() != new_db.name()
            || old_db.schema != new_db.schema
            || old_db.constraints != new_db.constraints
        {
            return None;
        }
        for ti in 0..old_db.schema.tables().len() {
            let table = TableId(ti);
            let old_data = old_db.instance.table(table);
            let new_data = new_db.instance.table(table);
            let (old_rows, new_rows) = (old_data.len(), new_data.len());
            if old_rows > new_rows {
                return None;
            }
            let arity = old_db.schema.tables()[ti].arity();
            for ai in 0..arity {
                let is_prefix = match (
                    old_data.column_store(AttrId(ai)),
                    new_data.column_store(AttrId(ai)),
                ) {
                    (Some(a), Some(b)) => a.is_prefix_of(b),
                    // Empty or row-only tables: compare the row slices
                    // directly (Value equality is total, floats by bits).
                    _ => {
                        old_rows == 0
                            || old_data
                                .rows()
                                .iter()
                                .zip(new_data.rows())
                                .all(|(a, b)| a[ai] == b[ai])
                    }
                };
                if !is_prefix {
                    return None;
                }
            }
            growth.push(TableGrowth {
                source,
                table,
                old_rows,
                new_rows,
            });
        }
    }
    Some(growth)
}

/// Why [`DynamicRegistry::insert`] rejected an upload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertError {
    /// The name is already registered (statically, or by a different
    /// upload) with different content. Maps to `409 Conflict`.
    NameTaken(String),
    /// The scenario alone exceeds the whole budget — no amount of
    /// eviction can make it fit. Maps to `413 Payload Too Large`.
    OverBudget {
        /// Approximate bytes the scenario needs.
        needed: usize,
        /// The configured budget.
        budget: usize,
    },
    /// The name is empty, longer than 128 bytes, or contains characters
    /// outside `[A-Za-z0-9._-]`. Maps to `400 Bad Request`.
    InvalidName(String),
}

impl std::fmt::Display for InsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InsertError::NameTaken(name) => {
                write!(f, "scenario name `{name}` is already registered")
            }
            InsertError::OverBudget { needed, budget } => write!(
                f,
                "scenario needs ~{needed} resident bytes, over the ingest budget of {budget}"
            ),
            InsertError::InvalidName(name) => write!(
                f,
                "invalid scenario name {name:?}: use 1-128 characters from [A-Za-z0-9._-]"
            ),
        }
    }
}

/// Why [`DynamicRegistry::remove`] refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoveError {
    /// No scenario of that name exists. Maps to `404 Not Found`.
    NotFound,
    /// The name belongs to a compiled-in scenario, which cannot be
    /// deleted. Maps to `403 Forbidden`.
    Static,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

impl DynamicRegistry {
    /// Wrap `statics` with an upload layer budgeted at `budget` bytes
    /// (`None` → [`INGEST_BUDGET_ENV_VAR`] or the default).
    pub fn new(statics: ScenarioRegistry, budget: Option<usize>) -> Self {
        DynamicRegistry {
            statics,
            budget: budget.unwrap_or_else(budget_from_env),
            clock: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The configured budget, in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Approximate bytes currently charged by uploaded scenarios.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().unwrap().resident
    }

    /// Number of uploaded (dynamic) scenarios currently resident.
    pub fn uploaded_len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Number of compiled-in scenarios.
    pub fn static_len(&self) -> usize {
        self.statics.len()
    }

    /// `true` iff `name` is a compiled-in scenario (never evicted, never
    /// extended in place).
    pub fn is_static(&self, name: &str) -> bool {
        self.statics.contains(name)
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Register an already-assembled scenario under `name`.
    ///
    /// Content-identical uploads (matching fingerprint *and* deep
    /// equality) deduplicate onto the existing entry regardless of the
    /// name they were sent under; otherwise name clashes are conflicts.
    /// Inserting may evict least-recently-used uploaded scenarios to
    /// fit the budget — never static ones.
    pub fn insert(
        &self,
        name: &str,
        description: &str,
        scenario: IntegrationScenario,
    ) -> Result<InsertOutcome, InsertError> {
        if !valid_name(name) {
            return Err(InsertError::InvalidName(name.to_owned()));
        }
        let fingerprint = scenario_fingerprint(&scenario);
        let bytes = approx_scenario_bytes(&scenario);
        let now = self.tick();
        let mut inner = self.inner.lock().unwrap();

        // Fingerprint dedup first: re-sending the same content is a
        // no-op even under its own name, so retried uploads are cheap.
        let dup = inner.entries.iter_mut().find(|(_, e)| {
            e.fingerprint == fingerprint
                && e.scenario.sources == scenario.sources
                && e.scenario.target == scenario.target
                && e.scenario.correspondences == scenario.correspondences
        });
        if let Some((existing, entry)) = dup {
            entry.last_used = now;
            return Ok(InsertOutcome::Deduplicated {
                existing: existing.clone(),
            });
        }
        if self.statics.contains(name) {
            return Err(InsertError::NameTaken(name.to_owned()));
        }
        if bytes > self.budget {
            return Err(InsertError::OverBudget {
                needed: bytes,
                budget: self.budget,
            });
        }
        // Re-upload under an existing uploaded name: accept it as an
        // in-place replacement iff the new content is a pure row-wise
        // extension of the old; anything else is a conflict.
        let growth = match inner.entries.get(name) {
            Some(old) => match extension_growth(&old.scenario, &scenario) {
                Some(growth) => {
                    let old = inner.entries.remove(name).expect("entry just found");
                    inner.resident -= old.bytes;
                    Some(growth)
                }
                None => return Err(InsertError::NameTaken(name.to_owned())),
            },
            None => None,
        };
        let mut evicted = Vec::new();
        while inner.resident + bytes > self.budget {
            let lru = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(n, _)| n.clone())
                .expect("resident bytes imply at least one uploaded entry");
            let gone = inner.entries.remove(&lru).expect("lru entry exists");
            inner.resident -= gone.bytes;
            evicted.push(lru);
        }
        inner.resident += bytes;
        inner.entries.insert(
            name.to_owned(),
            Entry {
                scenario: Arc::new(scenario),
                description: description.to_owned(),
                bytes,
                fingerprint,
                last_used: now,
            },
        );
        Ok(match growth {
            Some(growth) => InsertOutcome::Extended {
                bytes,
                evicted,
                growth,
            },
            None => InsertOutcome::Inserted { bytes, evicted },
        })
    }

    /// Delete the uploaded scenario `name`, returning the bytes freed.
    pub fn remove(&self, name: &str) -> Result<usize, RemoveError> {
        if self.statics.contains(name) {
            return Err(RemoveError::Static);
        }
        let mut inner = self.inner.lock().unwrap();
        match inner.entries.remove(name) {
            Some(entry) => {
                inner.resident -= entry.bytes;
                Ok(entry.bytes)
            }
            None => Err(RemoveError::NotFound),
        }
    }
}

impl ScenarioProvider for DynamicRegistry {
    fn get(&self, name: &str) -> Option<Arc<IntegrationScenario>> {
        if let Some(s) = self.statics.get(name) {
            return Some(s);
        }
        let now = self.tick();
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.entries.get_mut(name)?;
        entry.last_used = now;
        Some(Arc::clone(&entry.scenario))
    }

    fn contains(&self, name: &str) -> bool {
        self.statics.contains(name) || self.inner.lock().unwrap().entries.contains_key(name)
    }

    fn infos(&self) -> Vec<ScenarioInfo> {
        let mut infos = self.statics.infos();
        {
            let inner = self.inner.lock().unwrap();
            infos.extend(inner.entries.iter().map(|(name, e)| {
                ScenarioInfo::of_uploaded(name, &e.description, e.bytes as u64)
            }));
        }
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }
}

impl std::fmt::Debug for DynamicRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("DynamicRegistry")
            .field("statics", &self.statics)
            .field("uploaded", &inner.entries.keys().collect::<Vec<_>>())
            .field("resident", &inner.resident)
            .field("budget", &self.budget)
            .finish()
    }
}

impl From<InsertError> for IngestError {
    fn from(e: InsertError) -> Self {
        IngestError::new(e.to_string())
    }
}
