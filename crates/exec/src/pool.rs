//! A long-lived worker pool over a bounded job queue, plus a cooperative
//! cancellation token.
//!
//! [`parallel_map`](crate::parallel_map) covers the pipeline's *internal*
//! fan-out: a known batch of units, scoped threads, everything joined
//! before returning. A long-running service has the opposite shape —
//! jobs arrive one at a time from many producers, the backlog must stay
//! **bounded** (load is shed at the edge instead of accumulating in
//! memory), and jobs whose caller has given up should be skipped rather
//! than executed into the void. [`WorkerPool`] provides exactly that:
//! a fixed set of named worker threads draining a capacity-limited
//! FIFO, [`SubmitError`] telling producers *why* a job was refused, and
//! [`CancellationToken`] letting callers abandon a queued job
//! cooperatively.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A boxed unit of work for a [`WorkerPool`].
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why [`WorkerPool::try_submit`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — shed load and retry later.
    QueueFull,
    /// The pool is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "job queue is full"),
            SubmitError::ShuttingDown => write!(f, "worker pool is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A clonable flag for cooperative cancellation: the producer side calls
/// [`cancel`](CancellationToken::cancel) when it no longer wants the
/// result (deadline expired, client went away), and the job checks
/// [`is_cancelled`](CancellationToken::is_cancelled) before doing
/// expensive work.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Signal cancellation to every clone of this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether any clone has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is pushed or shutdown begins.
    job_ready: Condvar,
    capacity: usize,
    shutdown: AtomicBool,
    in_flight: AtomicUsize,
    executed: AtomicU64,
    panicked: AtomicU64,
}

/// A fixed-size pool of worker threads draining a bounded FIFO queue.
///
/// Submission never blocks: when the queue is full the job is refused
/// with [`SubmitError::QueueFull`], which is the backpressure signal a
/// server turns into `429 Too Many Requests`. Shutdown is graceful —
/// already-accepted jobs (queued and executing) are drained before the
/// workers exit.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
}

impl WorkerPool {
    /// Spawn `threads` workers (at least one) over a queue bounded at
    /// `capacity` pending jobs (at least one).
    pub fn new(threads: usize, capacity: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            capacity: capacity.max(1),
            shutdown: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            executed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
        });
        let worker_count = threads.max(1);
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("efes-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            workers: Mutex::new(workers),
            worker_count,
        }
    }

    /// Enqueue a job, refusing instead of blocking when the queue is at
    /// capacity or the pool is shutting down.
    pub fn try_submit(&self, job: Job) -> Result<(), SubmitError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        // Re-check under the lock so a submit racing shutdown cannot
        // slip a job past the final drain.
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        if queue.len() >= self.shared.capacity {
            return Err(SubmitError::QueueFull);
        }
        queue.push_back(job);
        drop(queue);
        self.shared.job_ready.notify_one();
        Ok(())
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("pool queue poisoned").len()
    }

    /// The queue's capacity bound.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Jobs currently executing on a worker.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Jobs executed to completion since the pool started.
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Jobs that panicked (the worker survives and keeps draining).
    pub fn panicked(&self) -> u64 {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Stop accepting new jobs, drain everything already accepted, and
    /// join the workers. Returns once the queue is empty and every
    /// in-flight job has finished. Idempotent; callable through a
    /// shared reference (e.g. an `Arc`-held pool), but must not be
    /// called from a worker's own job, which would self-join.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        let mut workers = self.workers.lock().expect("pool workers poisoned");
        for worker in workers.drain(..) {
            let _ = worker.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.job_ready.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .job_ready
                    .wait(queue)
                    .expect("pool queue poisoned");
            }
        };
        shared.in_flight.fetch_add(1, Ordering::AcqRel);
        // The fault site sits inside the unwind boundary so an injected
        // panic exercises the same isolation path as a real job panic.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = crate::fault::fire("exec.pool.job", None);
            job()
        }));
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        if outcome.is_ok() {
            shared.executed.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.panicked.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn executes_submitted_jobs() {
        let pool = WorkerPool::new(2, 16);
        let (tx, rx) = mpsc::channel();
        for i in 0..10 {
            let tx = tx.clone();
            pool.try_submit(Box::new(move || tx.send(i).unwrap())).unwrap();
        }
        let mut got: Vec<i32> = (0..10).map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn full_queue_refuses_instead_of_blocking() {
        let pool = WorkerPool::new(1, 1);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_submit(Box::new(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        }))
        .unwrap();
        // Wait until the worker holds the first job, then fill the queue.
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        pool.try_submit(Box::new(|| {})).unwrap();
        assert_eq!(pool.try_submit(Box::new(|| {})), Err(SubmitError::QueueFull));
        assert_eq!(pool.queue_depth(), 1);
        assert_eq!(pool.in_flight(), 1);
        block_tx.send(()).unwrap();
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let pool = WorkerPool::new(1, 16);
        let (tx, rx) = mpsc::channel();
        for i in 0..5 {
            let tx = tx.clone();
            pool.try_submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(10));
                tx.send(i).unwrap();
            }))
            .unwrap();
        }
        pool.shutdown();
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shutdown_refuses_new_jobs() {
        let pool = WorkerPool::new(1, 4);
        pool.begin_shutdown();
        assert_eq!(
            pool.try_submit(Box::new(|| {})),
            Err(SubmitError::ShuttingDown)
        );
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1, 4);
        pool.try_submit(Box::new(|| panic!("job panic"))).unwrap();
        let (tx, rx) = mpsc::channel();
        pool.try_submit(Box::new(move || tx.send(42).unwrap())).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
        assert_eq!(pool.panicked(), 1);
        // The counter increments after the job returns; give it a moment.
        for _ in 0..500 {
            if pool.executed() >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(pool.executed() >= 1);
    }

    #[test]
    fn cancellation_token_is_shared_across_clones() {
        let token = CancellationToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }
}
