//! Deterministic, seeded fault injection for chaos testing.
//!
//! Production failure paths — a panicking job, a stalled stage, a
//! spuriously cancelled request, an allocation budget trip — are
//! exercised rarely by accident and must therefore be exercised on
//! purpose. This module provides named *injection sites* that the
//! serving stack consults at well-chosen spots (`exec.pool.job`,
//! `serve.estimate.job`, `ingest.upload`, `profiling.shard.merge`, …).
//! Whether a site fires, and
//! with which fault, is a pure function of the [`FAULTS_ENV_VAR`] spec
//! (seed, rate, site filter, mode set) and a per-site hit counter — so
//! a given seed replays the exact same fault schedule, run after run.
//!
//! Spec grammar (comma-separated `key=value` pairs):
//!
//! ```text
//! EFES_FAULTS="seed=42,rate=0.05,site=serve.,mode=panic|delay"
//! ```
//!
//! * `seed` — the schedule seed (default 0);
//! * `rate` — per-hit injection probability in `[0, 1]` (default 1);
//! * `site` — only sites with this prefix fire (default all);
//! * `mode` — `|`-separated subset of `panic`, `delay`, `cancel`,
//!   `alloc` (default all four); the firing hash picks among them.
//!
//! When the variable is unset every site is a no-op beyond one branch;
//! an unparsable spec warns once on stderr and disables injection
//! (failing open would turn a typo into a chaos run). Every injected
//! fault increments a per-`(site, mode)` counter surfaced by
//! [`injected_counters`] — `/metrics` renders them as
//! `efes_fault_injected_total`.

use crate::CancellationToken;
use std::collections::BTreeMap;
use std::sync::{Mutex, Once, OnceLock};
use std::time::Duration;

/// Environment variable holding the fault-injection spec.
pub const FAULTS_ENV_VAR: &str = "EFES_FAULTS";

/// What a site should do, decided deterministically per hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Proceed normally (the overwhelmingly common case).
    None,
    /// Panic at the site — must stay isolated (worker survives).
    Panic,
    /// Stall for the given duration before proceeding.
    Delay(Duration),
    /// Cancel the request's token as if the client had vanished.
    Cancel,
    /// Behave as if an allocation/memory budget were exhausted.
    AllocCap,
}

impl FaultAction {
    fn label(self) -> &'static str {
        match self {
            FaultAction::None => "none",
            FaultAction::Panic => "panic",
            FaultAction::Delay(_) => "delay",
            FaultAction::Cancel => "cancel",
            FaultAction::AllocCap => "alloc",
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct FaultSpec {
    seed: u64,
    rate: f64,
    site_prefix: String,
    modes: Vec<&'static str>,
}

fn parse_spec(raw: &str) -> Option<FaultSpec> {
    let mut spec = FaultSpec {
        seed: 0,
        rate: 1.0,
        site_prefix: String::new(),
        modes: vec!["panic", "delay", "cancel", "alloc"],
    };
    for pair in raw.split(',').filter(|p| !p.trim().is_empty()) {
        let (key, value) = pair.split_once('=')?;
        match key.trim() {
            "seed" => spec.seed = value.trim().parse().ok()?,
            "rate" => {
                let r: f64 = value.trim().parse().ok()?;
                if !(0.0..=1.0).contains(&r) {
                    return None;
                }
                spec.rate = r;
            }
            "site" => spec.site_prefix = value.trim().to_owned(),
            "mode" => {
                let mut modes = Vec::new();
                for m in value.split('|') {
                    modes.push(match m.trim() {
                        "panic" => "panic",
                        "delay" => "delay",
                        "cancel" => "cancel",
                        "alloc" => "alloc",
                        _ => return None,
                    });
                }
                if modes.is_empty() {
                    return None;
                }
                spec.modes = modes;
            }
            _ => return None,
        }
    }
    Some(spec)
}

struct FaultState {
    /// Per-site hit counters (every consultation, fired or not) — the
    /// deterministic schedule index.
    hits: BTreeMap<String, u64>,
    /// Per-(site, mode) injected-fault counters for `/metrics`.
    injected: BTreeMap<(String, &'static str), u64>,
}

fn state() -> &'static Mutex<FaultState> {
    static STATE: OnceLock<Mutex<FaultState>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(FaultState {
            hits: BTreeMap::new(),
            injected: BTreeMap::new(),
        })
    })
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Consult a named injection site: returns the action this hit draws
/// under the current [`FAULTS_ENV_VAR`] spec ([`FaultAction::None`]
/// when unset, filtered out, or the rate dice miss). The spec is
/// re-read from the environment on every call — sites sit on per-job
/// paths, not per-row ones, so the lookup cost is irrelevant and tests
/// can flip the variable between requests.
pub fn at(site: &str) -> FaultAction {
    let raw = match std::env::var(FAULTS_ENV_VAR) {
        Err(_) => return FaultAction::None,
        Ok(raw) => raw,
    };
    let Some(spec) = parse_spec(&raw) else {
        static WARN_ONCE: Once = Once::new();
        WARN_ONCE.call_once(|| {
            eprintln!(
                "warning: unparsable {FAULTS_ENV_VAR}={raw:?}; \
                 expected e.g. \"seed=7,rate=0.1,site=serve.,mode=panic|delay\"; \
                 fault injection disabled"
            );
        });
        return FaultAction::None;
    };
    if !site.starts_with(&spec.site_prefix) {
        return FaultAction::None;
    }
    let hit = {
        let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
        let n = st.hits.entry(site.to_owned()).or_insert(0);
        *n += 1;
        *n - 1
    };
    let h = splitmix64(spec.seed ^ fnv1a(site) ^ hit.wrapping_mul(0x9e37_79b9));
    // Top 53 bits → uniform in [0, 1); compare against the rate.
    if ((h >> 11) as f64) / ((1u64 << 53) as f64) >= spec.rate {
        return FaultAction::None;
    }
    let pick = spec.modes[(splitmix64(h) % spec.modes.len() as u64) as usize];
    let action = match pick {
        "panic" => FaultAction::Panic,
        "delay" => FaultAction::Delay(Duration::from_millis(1 + splitmix64(h ^ 1) % 20)),
        "cancel" => FaultAction::Cancel,
        _ => FaultAction::AllocCap,
    };
    let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
    *st.injected.entry((site.to_owned(), action.label())).or_insert(0) += 1;
    action
}

/// Consult `site` and *execute* the drawn action in place: panic,
/// sleep, or cancel `token` (ignored when `None`). Returns `true` when
/// the action was [`FaultAction::AllocCap`], which only the call site
/// knows how to translate (e.g. report its budget as exhausted).
pub fn fire(site: &str, token: Option<&CancellationToken>) -> bool {
    match at(site) {
        FaultAction::None => false,
        FaultAction::Panic => panic!("injected fault: panic at {site}"),
        FaultAction::Delay(d) => {
            std::thread::sleep(d);
            false
        }
        FaultAction::Cancel => {
            if let Some(token) = token {
                token.cancel();
            }
            false
        }
        FaultAction::AllocCap => true,
    }
}

/// Snapshot of the injected-fault counters as
/// `((site, mode), count)` pairs, sorted by site then mode.
pub fn injected_counters() -> Vec<((String, &'static str), u64)> {
    let st = state().lock().unwrap_or_else(|e| e.into_inner());
    st.injected.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_parses_and_rejects() {
        let spec = parse_spec("seed=42,rate=0.5,site=serve.,mode=panic|delay").unwrap();
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.rate, 0.5);
        assert_eq!(spec.site_prefix, "serve.");
        assert_eq!(spec.modes, vec!["panic", "delay"]);
        assert_eq!(parse_spec("").unwrap().seed, 0);
        assert_eq!(parse_spec("seed=7").unwrap().rate, 1.0);
        assert!(parse_spec("rate=2.0").is_none());
        assert!(parse_spec("mode=explode").is_none());
        assert!(parse_spec("bogus=1").is_none());
        assert!(parse_spec("seed").is_none());
    }

    #[test]
    fn schedule_is_deterministic_in_seed_site_and_hit() {
        let spec = parse_spec("seed=9,rate=0.3").unwrap();
        // Recompute the draw twice for the same (seed, site, hit) and
        // compare — the hash chain has no hidden state.
        let draw = |hit: u64| {
            let h = splitmix64(spec.seed ^ fnv1a("serve.estimate.job") ^ hit.wrapping_mul(0x9e37_79b9));
            (
                ((h >> 11) as f64) / ((1u64 << 53) as f64) < spec.rate,
                splitmix64(h) % spec.modes.len() as u64,
            )
        };
        for hit in 0..64 {
            assert_eq!(draw(hit), draw(hit));
        }
        // And the rate actually thins the schedule.
        let fired = (0..10_000).filter(|h| draw(*h).0).count();
        assert!((2000..4000).contains(&fired), "fired {fired}/10000 at rate 0.3");
    }

    #[test]
    fn unset_env_is_a_no_op() {
        // The suite does not set EFES_FAULTS; every site must be silent.
        assert_eq!(at("exec.test.site"), FaultAction::None);
        assert!(!fire("exec.test.site", None));
    }
}
