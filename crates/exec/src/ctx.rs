//! Cooperative in-flight cancellation: [`RunContext`] and [`Checkpoint`].
//!
//! A [`CancellationToken`](crate::CancellationToken) lets a producer
//! *request* that work stop; this module is how long-running kernels
//! *honour* that request while it is still cheap to do so. A
//! [`RunContext`] bundles the token with an optional deadline, and a
//! [`Checkpoint`] amortises the atomic load + clock read behind a local
//! counter so hot loops can tick once per iteration at effectively zero
//! cost — the shared state is only consulted every
//! [`CHECK_INTERVAL`] ticks.
//!
//! Protocol (see DESIGN.md §2h for the placement rules):
//!
//! * Cancellation is **purely abortive**: a checkpoint either returns
//!   `Ok(())` and the loop continues exactly as if the checkpoint were
//!   not there, or returns `Err(Cancelled)` and the kernel unwinds via
//!   `?`. Checkpoints never reorder, skip, or batch work, so outputs
//!   are byte-identical whenever no cancellation fires.
//! * Every kernel exposes a fallible `*_ctx` variant; the original
//!   infallible API delegates with [`RunContext::unbounded`], which can
//!   never cancel.
//! * Cleanup happens in `Drop`/guard code, never after the checkpoint —
//!   shared state (e.g. a `ProfileCache` fill slot) must be valid at
//!   every `?`.

use crate::CancellationToken;
use std::cell::Cell;
use std::time::Instant;

/// How many [`Checkpoint::tick`]s elapse between consultations of the
/// shared cancellation state (a power of two so the test is a mask).
pub const CHECK_INTERVAL: u32 = 1 << 14;

/// The unit error a cancelled kernel unwinds with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "run cancelled")
    }
}

impl std::error::Error for Cancelled {}

/// Everything a running job needs to decide whether to keep going: the
/// caller's cancellation token plus an optional hard deadline.
///
/// Cheap to clone (an `Arc` bump) and `Sync`, so parallel sweeps can
/// share one context while each worker keeps its own [`Checkpoint`].
#[derive(Debug, Clone, Default)]
pub struct RunContext {
    token: CancellationToken,
    deadline: Option<Instant>,
}

impl RunContext {
    /// A context that observes `token` and aborts past `deadline`.
    pub fn new(token: CancellationToken, deadline: Option<Instant>) -> Self {
        RunContext { token, deadline }
    }

    /// A context that can never cancel — what the infallible public
    /// APIs pass so their behaviour is exactly the pre-cancellation
    /// code path.
    pub fn unbounded() -> Self {
        RunContext::default()
    }

    /// The token this context observes (for wiring spurious-cancel
    /// fault injection and tests).
    pub fn token(&self) -> &CancellationToken {
        &self.token
    }

    /// Whether cancellation has been requested or the deadline passed.
    /// This reads shared state — hot loops should go through a
    /// [`Checkpoint`] instead.
    pub fn is_cancelled(&self) -> bool {
        self.token.is_cancelled() || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// An immediate fallible check, for stage boundaries.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }

    /// A fresh amortised checkpoint over this context.
    pub fn checkpoint(&self) -> Checkpoint<'_> {
        Checkpoint {
            ctx: self,
            ticks: Cell::new(0),
        }
    }
}

/// An amortised cancellation probe for hot loops: [`tick`](Self::tick)
/// increments a plain counter and only consults the shared token/clock
/// every [`CHECK_INTERVAL`] calls, so the per-iteration cost is an
/// increment and a mask.
///
/// Not `Sync` by design (the counter is a `Cell`): each worker of a
/// parallel sweep derives its own checkpoint from the shared
/// [`RunContext`].
#[derive(Debug)]
pub struct Checkpoint<'a> {
    ctx: &'a RunContext,
    ticks: Cell<u32>,
}

impl Checkpoint<'_> {
    /// Count one unit of work; every [`CHECK_INTERVAL`] ticks, consult
    /// the context and abort with `Err(Cancelled)` if it says so.
    #[inline]
    pub fn tick(&self) -> Result<(), Cancelled> {
        let t = self.ticks.get().wrapping_add(1);
        self.ticks.set(t);
        if t & (CHECK_INTERVAL - 1) == 0 {
            self.ctx.check()
        } else {
            Ok(())
        }
    }

    /// Count `n` units of work at once — the bulk form of
    /// [`tick`](Self::tick) for kernels that sweep a whole slice in one
    /// tight (often auto-vectorised) loop, like the CSR adjacency
    /// builds behind the CSG counting evaluator. Consults the shared
    /// state iff the `n` ticks cross a [`CHECK_INTERVAL`] boundary, so
    /// interleaving `tick_n` with `tick` preserves the amortisation
    /// guarantee.
    #[inline]
    pub fn tick_n(&self, n: u64) -> Result<(), Cancelled> {
        let old = self.ticks.get();
        let new = old.wrapping_add(n as u32);
        self.ticks.set(new);
        let crossed =
            n >= u64::from(CHECK_INTERVAL) || (old ^ new) & !(CHECK_INTERVAL - 1) != 0;
        if crossed {
            self.ctx.check()
        } else {
            Ok(())
        }
    }

    /// The context this checkpoint observes.
    pub fn context(&self) -> &RunContext {
        self.ctx
    }

    /// An unamortised check, for once-per-stage boundaries where the
    /// full probe cost is irrelevant.
    pub fn check_now(&self) -> Result<(), Cancelled> {
        self.ctx.check()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unbounded_context_never_cancels() {
        let ctx = RunContext::unbounded();
        assert!(!ctx.is_cancelled());
        assert_eq!(ctx.check(), Ok(()));
        let ck = ctx.checkpoint();
        for _ in 0..(3 * CHECK_INTERVAL) {
            assert_eq!(ck.tick(), Ok(()));
        }
    }

    #[test]
    fn token_cancellation_fires_at_the_interval_boundary() {
        let token = CancellationToken::new();
        let ctx = RunContext::new(token.clone(), None);
        let ck = ctx.checkpoint();
        token.cancel();
        let mut aborted_at = None;
        for i in 1..=(2 * CHECK_INTERVAL) {
            if ck.tick().is_err() {
                aborted_at = Some(i);
                break;
            }
        }
        assert_eq!(aborted_at, Some(CHECK_INTERVAL));
    }

    #[test]
    fn tick_n_fires_on_interval_crossings_only() {
        let token = CancellationToken::new();
        let ctx = RunContext::new(token.clone(), None);
        let ck = ctx.checkpoint();
        token.cancel();
        // Stays below the first boundary: no shared-state consultation.
        assert_eq!(ck.tick_n(u64::from(CHECK_INTERVAL) - 2), Ok(()));
        assert_eq!(ck.tick(), Ok(()));
        // The next bulk tick crosses the boundary and aborts.
        assert_eq!(ck.tick_n(2), Err(Cancelled));
    }

    #[test]
    fn tick_n_larger_than_interval_always_checks() {
        let token = CancellationToken::new();
        let ctx = RunContext::new(token.clone(), None);
        let ck = ctx.checkpoint();
        token.cancel();
        assert_eq!(ck.tick_n(u64::from(CHECK_INTERVAL)), Err(Cancelled));
        // And a multiple of 2³² ticks (counter wraparound) still checks.
        let ck2 = ctx.checkpoint();
        assert_eq!(ck2.tick_n(1u64 << 32), Err(Cancelled));
    }

    #[test]
    fn tick_n_mixes_with_tick() {
        let ctx = RunContext::unbounded();
        let ck = ctx.checkpoint();
        for _ in 0..3 {
            assert_eq!(ck.tick_n(u64::from(CHECK_INTERVAL) / 2), Ok(()));
            assert_eq!(ck.tick(), Ok(()));
        }
    }

    #[test]
    fn past_deadline_cancels_without_a_token() {
        let ctx = RunContext::new(
            CancellationToken::new(),
            Some(Instant::now() - Duration::from_millis(1)),
        );
        assert!(ctx.is_cancelled());
        assert_eq!(ctx.check(), Err(Cancelled));
    }

    #[test]
    fn future_deadline_does_not_cancel() {
        let ctx = RunContext::new(
            CancellationToken::new(),
            Some(Instant::now() + Duration::from_secs(3600)),
        );
        assert_eq!(ctx.check(), Ok(()));
    }

    #[test]
    fn clones_observe_the_same_token() {
        let ctx = RunContext::new(CancellationToken::new(), None);
        let clone = ctx.clone();
        ctx.token().cancel();
        assert!(clone.is_cancelled());
    }
}
