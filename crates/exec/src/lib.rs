//! Execution layer for the EFES pipeline.
//!
//! The estimation pipeline fans out over independent units — modules in
//! the estimator, correspondences in the value detector, relationships
//! in CSG matching, columns in profiling. This crate provides the one
//! primitive they all share: an order-preserving [`parallel_map`] built
//! on `std::thread::scope`, governed by an [`ExecutionMode`] that can be
//! forced sequential (for determinism checks and timing baselines) via
//! the `EFES_THREADS` environment variable or programmatically.
//!
//! No work-stealing: units are split into contiguous chunks, one per
//! worker. Pipeline units are coarse (a whole correspondence, a whole
//! module) and few, so chunking overhead dominates only below the
//! parallelism threshold where we fall back to a plain loop anyway.

use std::sync::Once;
use std::thread;
use std::time::Instant;

pub mod ctx;
pub mod fault;
pub mod pool;

pub use ctx::{Cancelled, Checkpoint, RunContext, CHECK_INTERVAL};
pub use pool::{CancellationToken, Job, SubmitError, WorkerPool};

/// Environment variable forcing the thread budget: `1` means fully
/// sequential, `N > 1` caps workers at `N`. Unset falls back to the
/// machine's available parallelism; an unparsable value does the same
/// but emits a one-time warning on stderr.
pub const THREADS_ENV_VAR: &str = "EFES_THREADS";

/// How pipeline stages execute their independent units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Run every unit in the calling thread, in order.
    Sequential,
    /// Fan units out over up to this many worker threads.
    Parallel(usize),
}

impl ExecutionMode {
    /// The mode selected by `EFES_THREADS`, defaulting to one worker per
    /// available core. An unparsable value also falls back to all cores,
    /// but warns once on stderr instead of degrading silently.
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV_VAR) {
            Err(_) => ExecutionMode::Parallel(available_threads()),
            Ok(raw) => Self::parse_threads(&raw).unwrap_or_else(|| {
                static WARN_ONCE: Once = Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "warning: {THREADS_ENV_VAR}={raw:?} is not a thread count; \
                         falling back to all {} available cores",
                        available_threads()
                    );
                });
                ExecutionMode::Parallel(available_threads())
            }),
        }
    }

    /// Parse an `EFES_THREADS` value: `0`/`1` mean sequential, `N > 1`
    /// caps workers at `N`, anything unparsable is `None`.
    pub fn parse_threads(raw: &str) -> Option<Self> {
        match raw.trim().parse::<usize>().ok()? {
            0 | 1 => Some(ExecutionMode::Sequential),
            n => Some(ExecutionMode::Parallel(n)),
        }
    }

    /// A parallel mode with an explicit worker cap; `n <= 1` collapses
    /// to sequential.
    pub fn with_threads(n: usize) -> Self {
        if n <= 1 {
            ExecutionMode::Sequential
        } else {
            ExecutionMode::Parallel(n)
        }
    }

    /// The worker budget this mode grants.
    pub fn threads(&self) -> usize {
        match self {
            ExecutionMode::Sequential => 1,
            ExecutionMode::Parallel(n) => (*n).max(1),
        }
    }

    /// Whether this mode may use more than one thread.
    pub fn is_parallel(&self) -> bool {
        self.threads() > 1
    }
}

impl Default for ExecutionMode {
    fn default() -> Self {
        ExecutionMode::from_env()
    }
}

/// A configuration-level description of how to pick an [`ExecutionMode`].
///
/// Unlike `ExecutionMode`, which is always concrete, a policy can defer
/// the decision to the environment — the right default for configuration
/// structs that are built once and shipped around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionPolicy {
    /// Resolve from `EFES_THREADS` / available parallelism at run time.
    #[default]
    FromEnv,
    /// Always run sequentially.
    Sequential,
    /// Fan out over up to this many threads (`<= 1` means sequential).
    Threads(usize),
}

impl ExecutionPolicy {
    /// Resolve this policy into a concrete mode.
    pub fn mode(&self) -> ExecutionMode {
        match self {
            ExecutionPolicy::FromEnv => ExecutionMode::from_env(),
            ExecutionPolicy::Sequential => ExecutionMode::Sequential,
            ExecutionPolicy::Threads(n) => ExecutionMode::with_threads(*n),
        }
    }
}

/// The number of hardware threads, defaulting to 1 when undetectable.
pub fn available_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Map `f` over `items`, preserving order, using up to
/// `mode.threads()` scoped worker threads.
///
/// Units are distributed as contiguous chunks, so results are
/// concatenated back in input order and the output is identical to the
/// sequential `items.into_iter().map(f).collect()` whenever `f` is a
/// pure function of its input.
pub fn parallel_map<T, U, F>(mode: ExecutionMode, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = mode.threads().min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let len = items.len();
    let chunk_size = len.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items.into_iter();
    while chunks.len() * chunk_size < len {
        chunks.push(items.by_ref().take(chunk_size).collect());
    }

    let f = &f;
    thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(len);
        for handle in handles {
            out.extend(handle.join().expect("parallel_map worker panicked"));
        }
        out
    })
}

/// Map `f` over borrowed `items`, preserving order, under `mode`.
pub fn parallel_map_ref<'a, T, U, F>(mode: ExecutionMode, items: &'a [T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    parallel_map(mode, items.iter().collect(), f)
}

/// Run `f` over contiguous mutable chunks of `out` — one chunk per
/// worker — passing each chunk's global start offset, and return the
/// per-chunk results in chunk order.
///
/// This is the in-place sibling of [`parallel_map`] for fixpoint-style
/// sweeps that rewrite a flat buffer every iteration and cannot afford a
/// fresh allocation per sweep (e.g. the sparse similarity-flooding
/// solver in `efes-matching`). The returned `Vec<R>` is the only
/// allocation, sized by the worker count, so callers can fold per-chunk
/// reductions (max, residual) out of the same pass that wrote the
/// buffer. Chunking is contiguous and deterministic: as long as `f`
/// writes `chunk[i]` as a pure function of `offset + i` (and any state
/// captured immutably), the buffer contents are identical under any
/// thread budget.
pub fn parallel_chunks_mut<T, R, F>(mode: ExecutionMode, out: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    let len = out.len();
    let workers = mode.threads().min(len);
    if workers <= 1 {
        return vec![f(0, out)];
    }
    let chunk_size = len.div_ceil(workers);
    let f = &f;
    thread::scope(|scope| {
        let handles: Vec<_> = out
            .chunks_mut(chunk_size)
            .enumerate()
            .map(|(i, chunk)| scope.spawn(move || f(i * chunk_size, chunk)))
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("parallel_chunks_mut worker panicked"))
            .collect()
    })
}

/// Reduce `items` to a single value with an associative, order-preserving
/// `merge`, pairing adjacent elements round by round (a balanced merge
/// tree) and running each round's merges through [`parallel_map`].
///
/// Order preservation matters: `merge(a, b)` is always called with `a`
/// immediately preceding `b` in the current sequence, so concatenation-
/// style merges (appending row-ordered buffers) reconstruct the exact
/// sequential result. An odd trailing element passes through a round
/// unmerged. Returns `None` for an empty input.
///
/// For `n` chunks the tree performs `n - 1` merges in `ceil(log2 n)`
/// rounds, so chunked profiling merges scale with the thread budget
/// instead of serialising behind a left fold.
pub fn merge_tree<T, F>(mode: ExecutionMode, mut items: Vec<T>, merge: F) -> Option<T>
where
    T: Send,
    F: Fn(T, T) -> T + Sync,
{
    while items.len() > 1 {
        let mut pairs = Vec::with_capacity(items.len().div_ceil(2));
        let mut it = items.into_iter();
        while let Some(a) = it.next() {
            pairs.push((a, it.next()));
        }
        items = parallel_map(mode, pairs, |(a, b)| match b {
            Some(b) => merge(a, b),
            None => a,
        });
    }
    items.pop()
}

/// Run `f`, returning its result and the elapsed wall-clock
/// milliseconds. The pipeline records these per stage so the repro
/// binary and benches can print sequential-vs-parallel tables.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64() * 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..1000).collect();
        let seq = parallel_map(ExecutionMode::Sequential, items.clone(), |x| x * x + 1);
        let par = parallel_map(ExecutionMode::Parallel(8), items, |x| x * x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn order_is_preserved_for_awkward_chunk_counts() {
        for len in [0usize, 1, 2, 3, 7, 16, 17, 100] {
            for threads in [1usize, 2, 3, 5, 32] {
                let items: Vec<usize> = (0..len).collect();
                let out = parallel_map(ExecutionMode::with_threads(threads), items, |x| x);
                assert_eq!(out, (0..len).collect::<Vec<_>>(), "len={len} threads={threads}");
            }
        }
    }

    #[test]
    fn every_item_is_visited_exactly_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..137).collect();
        let out = parallel_map(ExecutionMode::Parallel(4), items, |x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 137);
        assert_eq!(count.load(Ordering::Relaxed), 137);
    }

    #[test]
    fn policy_resolves_to_modes() {
        assert_eq!(ExecutionPolicy::Sequential.mode(), ExecutionMode::Sequential);
        assert_eq!(ExecutionPolicy::Threads(1).mode(), ExecutionMode::Sequential);
        assert_eq!(ExecutionPolicy::Threads(4).mode(), ExecutionMode::Parallel(4));
        assert_eq!(ExecutionPolicy::default(), ExecutionPolicy::FromEnv);
    }

    #[test]
    fn with_threads_collapses_to_sequential() {
        assert_eq!(ExecutionMode::with_threads(0), ExecutionMode::Sequential);
        assert_eq!(ExecutionMode::with_threads(1), ExecutionMode::Sequential);
        assert!(ExecutionMode::with_threads(2).is_parallel());
        assert_eq!(ExecutionMode::Sequential.threads(), 1);
        assert_eq!(ExecutionMode::Parallel(6).threads(), 6);
    }

    #[test]
    fn map_ref_borrows_without_cloning() {
        let items = vec!["alpha".to_string(), "beta".to_string()];
        let lens = parallel_map_ref(ExecutionMode::Parallel(2), &items, |s| s.len());
        assert_eq!(lens, vec![5, 4]);
    }

    #[test]
    fn parse_threads_covers_the_env_grammar() {
        assert_eq!(ExecutionMode::parse_threads("0"), Some(ExecutionMode::Sequential));
        assert_eq!(ExecutionMode::parse_threads("1"), Some(ExecutionMode::Sequential));
        assert_eq!(ExecutionMode::parse_threads(" 6 "), Some(ExecutionMode::Parallel(6)));
        assert_eq!(ExecutionMode::parse_threads("lots"), None);
        assert_eq!(ExecutionMode::parse_threads("-2"), None);
        assert_eq!(ExecutionMode::parse_threads(""), None);
    }

    #[test]
    fn chunks_mut_fills_in_place_and_reduces() {
        for threads in [1usize, 2, 3, 8, 64] {
            let mut buf = vec![0u64; 1000];
            let maxes = parallel_chunks_mut(
                ExecutionMode::with_threads(threads),
                &mut buf,
                |offset, chunk| {
                    let mut max = 0u64;
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = (offset + i) as u64 * 2;
                        max = max.max(*slot);
                    }
                    max
                },
            );
            let expect: Vec<u64> = (0..1000).map(|x| x * 2).collect();
            assert_eq!(buf, expect, "threads={threads}");
            assert_eq!(maxes.into_iter().max(), Some(1998), "threads={threads}");
        }
    }

    #[test]
    fn chunks_mut_handles_empty_and_tiny_buffers() {
        let mut empty: Vec<u8> = vec![];
        let r = parallel_chunks_mut(ExecutionMode::Parallel(4), &mut empty, |_, c| c.len());
        assert_eq!(r, vec![0]);
        let mut one = vec![7u8];
        let r = parallel_chunks_mut(ExecutionMode::Parallel(4), &mut one, |off, c| {
            c[0] += 1;
            off
        });
        assert_eq!(r, vec![0]);
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn merge_tree_preserves_order_for_concatenation() {
        for threads in [1usize, 2, 3, 8] {
            for len in [0usize, 1, 2, 3, 5, 8, 13] {
                let items: Vec<String> = (0..len).map(|i| i.to_string()).collect();
                let merged = merge_tree(ExecutionMode::with_threads(threads), items, |a, b| {
                    format!("{a}{b}")
                });
                let expect: String = (0..len).map(|i| i.to_string()).collect();
                match merged {
                    Some(s) => assert_eq!(s, expect, "len={len} threads={threads}"),
                    None => assert_eq!(len, 0, "threads={threads}"),
                }
            }
        }
    }

    #[test]
    fn merge_tree_sums_match_a_left_fold() {
        let items: Vec<u64> = (0..101).collect();
        let sum = merge_tree(ExecutionMode::Parallel(4), items, |a, b| a + b);
        assert_eq!(sum, Some(5050));
    }

    #[test]
    fn timed_reports_nonnegative_elapsed() {
        let (value, ms) = timed(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(ms >= 0.0);
    }
}
