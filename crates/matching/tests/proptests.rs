//! Property-based tests for the matching substrate: similarity measures
//! are bounded, symmetric and identity-respecting; the tokenizer never
//! produces empty tokens; match accuracy behaves like a distance
//! complement; the [`NameIndex`] bounds dominate the exact similarity;
//! the sparse flooding engine reproduces the reference bit-for-bit on
//! arbitrary schemas.

use efes_matching::flooding::{
    similarity_flooding, similarity_flooding_reference, FloodingConfig,
};
use efes_matching::{
    jaro_winkler, levenshtein, match_accuracy, name_similarity, tokenize, trigram_jaccard,
    CombinedMatcher, MatcherConfig, NameIndex, PrunePolicy,
};
use efes_profiling::ProfileCache;
use efes_relational::{DataType, Database, DatabaseBuilder};
use proptest::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_ -]{0,24}"
}

/// Attribute-name vocabulary for random schemas: repeats across tables
/// exercise the label-interning paths.
const VOCAB: &[&str] = &[
    "id", "name", "title", "genre", "year", "artist", "length", "track", "album", "récord",
];

/// A random schema-only database: up to 4 tables of up to 5 attributes,
/// names drawn from [`VOCAB`] (deduplicated within a table).
fn arb_schema(tag: &'static str) -> impl Strategy<Value = Database> {
    proptest::collection::vec(
        (0..VOCAB.len(), proptest::collection::vec(0..VOCAB.len(), 0..5)),
        0..4,
    )
    .prop_map(move |tables| {
        let mut b = DatabaseBuilder::new(tag);
        for (ti, (tname, attrs)) in tables.into_iter().enumerate() {
            let table = format!("t{ti}_{}", VOCAB[tname]);
            b = b.table(&table, |mut t| {
                let mut seen = std::collections::HashSet::new();
                for a in &attrs {
                    if seen.insert(*a) {
                        t = t.attr(VOCAB[*a], DataType::Text);
                    }
                }
                t
            });
        }
        b.build().unwrap()
    })
}

proptest! {
    /// Levenshtein is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn levenshtein_is_a_metric(a in arb_ident(), b in arb_ident(), c in arb_ident()) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        // Bounded by the longer string.
        prop_assert!(levenshtein(&a, &b) <= a.chars().count().max(b.chars().count()));
    }

    /// Jaro-Winkler and trigram Jaccard stay in [0,1], are symmetric, and
    /// score identical strings 1.
    #[test]
    fn string_similarities_bounded_and_symmetric(a in arb_ident(), b in arb_ident()) {
        for f in [jaro_winkler, trigram_jaccard] {
            let s = f(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s), "{s}");
            prop_assert!((s - f(&b, &a)).abs() < 1e-12);
        }
        if !a.is_empty() {
            prop_assert!((jaro_winkler(&a, &a) - 1.0).abs() < 1e-12);
            prop_assert!((trigram_jaccard(&a, &a) - 1.0).abs() < 1e-12);
        }
    }

    /// The tokenizer emits non-empty lowercase tokens that jointly cover
    /// every alphanumeric character of the input.
    #[test]
    fn tokenizer_is_well_formed(ident in arb_ident()) {
        let tokens = tokenize(&ident);
        let mut token_chars = 0usize;
        for t in &tokens {
            prop_assert!(!t.is_empty());
            prop_assert!(t.chars().all(|c| !c.is_uppercase()));
            token_chars += t.chars().count();
        }
        let alnum = ident.chars().filter(|c| c.is_alphanumeric()).count();
        prop_assert_eq!(token_chars, alnum);
    }

    /// Match accuracy: 1 iff the proposal equals the intended set;
    /// adding a spurious pair never increases it.
    #[test]
    fn match_accuracy_behaviour(
        intended in proptest::collection::btree_set(0u32..40, 1..12),
        spurious in 100u32..200,
    ) {
        let intended: Vec<u32> = intended.into_iter().collect();
        let perfect = match_accuracy(&intended, &intended);
        prop_assert_eq!(perfect.accuracy, 1.0);

        let mut with_extra = intended.clone();
        with_extra.push(spurious);
        let worse = match_accuracy(&with_extra, &intended);
        prop_assert!(worse.accuracy < 1.0);
        prop_assert_eq!(worse.deletions, 1);

        let empty: Vec<u32> = vec![];
        let scratch = match_accuracy(&empty, &intended);
        prop_assert_eq!(scratch.accuracy, 0.0);
        prop_assert_eq!(scratch.additions, intended.len());
    }

    /// The name-index upper bound dominates the exact similarity for
    /// arbitrary identifier pairs (the soundness contract pruning
    /// rests on).
    #[test]
    fn name_index_bounds_dominate_similarity(
        queries in proptest::collection::vec(arb_ident(), 1..6),
        targets in proptest::collection::vec(arb_ident(), 1..6),
    ) {
        let index = NameIndex::build(&targets);
        for q in &queries {
            let bounds = index.upper_bounds(q);
            for (t, ub) in targets.iter().zip(&bounds) {
                let exact = name_similarity(q, t);
                prop_assert!(
                    ub + 1e-9 >= exact,
                    "bound {} < exact {} for {:?} vs {:?}", ub, exact, q, t
                );
            }
        }
    }

    /// The sparse flooding engine reproduces the reference bit-for-bit
    /// on arbitrary schemas, including degenerate ones.
    #[test]
    fn sparse_flooding_equals_reference(
        s in arb_schema("s"),
        t in arb_schema("t"),
        max_iterations in 1usize..12,
    ) {
        let config = FloodingConfig { max_iterations, epsilon: 1e-4 };
        let sparse = similarity_flooding(&s, &t, &config);
        let reference = similarity_flooding_reference(&s, &t, &config);
        prop_assert_eq!(sparse.len(), reference.len());
        for (pair, v) in &sparse {
            let r = reference[pair];
            prop_assert_eq!(v.to_bits(), r.to_bits(), "{:?}: {} != {}", pair, v, r);
        }
    }

    /// Pruned matching emits exactly the exhaustive result on arbitrary
    /// schema-only databases (the instance-backed cases are covered by
    /// the registry differential test).
    #[test]
    fn pruned_matching_equals_exhaustive(
        s in arb_schema("s"),
        t in arb_schema("t"),
        threshold in 0.0f64..1.0,
    ) {
        let config = MatcherConfig { attr_threshold: threshold, ..MatcherConfig::default() };
        let cache = ProfileCache::new();
        let mode = efes_exec::ExecutionMode::Sequential;
        let exhaustive = CombinedMatcher::new(config.clone())
            .with_prune(PrunePolicy::Off)
            .propose_attribute_matches_stats(&s, &t, &cache, mode).0;
        let pruned = CombinedMatcher::new(config)
            .with_prune(PrunePolicy::On)
            .propose_attribute_matches_stats(&s, &t, &cache, mode).0;
        prop_assert_eq!(exhaustive.len(), pruned.len());
        for (e, p) in exhaustive.iter().zip(&pruned) {
            prop_assert_eq!(e.source, p.source);
            prop_assert_eq!(e.target, p.target);
            prop_assert_eq!(e.score.to_bits(), p.score.to_bits());
        }
    }
}
