//! Property-based tests for the matching substrate: similarity measures
//! are bounded, symmetric and identity-respecting; the tokenizer never
//! produces empty tokens; match accuracy behaves like a distance
//! complement.

use efes_matching::{jaro_winkler, levenshtein, match_accuracy, tokenize, trigram_jaccard};
use proptest::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_ -]{0,24}"
}

proptest! {
    /// Levenshtein is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn levenshtein_is_a_metric(a in arb_ident(), b in arb_ident(), c in arb_ident()) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        // Bounded by the longer string.
        prop_assert!(levenshtein(&a, &b) <= a.chars().count().max(b.chars().count()));
    }

    /// Jaro-Winkler and trigram Jaccard stay in [0,1], are symmetric, and
    /// score identical strings 1.
    #[test]
    fn string_similarities_bounded_and_symmetric(a in arb_ident(), b in arb_ident()) {
        for f in [jaro_winkler, trigram_jaccard] {
            let s = f(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s), "{s}");
            prop_assert!((s - f(&b, &a)).abs() < 1e-12);
        }
        if !a.is_empty() {
            prop_assert!((jaro_winkler(&a, &a) - 1.0).abs() < 1e-12);
            prop_assert!((trigram_jaccard(&a, &a) - 1.0).abs() < 1e-12);
        }
    }

    /// The tokenizer emits non-empty lowercase tokens that jointly cover
    /// every alphanumeric character of the input.
    #[test]
    fn tokenizer_is_well_formed(ident in arb_ident()) {
        let tokens = tokenize(&ident);
        let mut token_chars = 0usize;
        for t in &tokens {
            prop_assert!(!t.is_empty());
            prop_assert!(t.chars().all(|c| !c.is_uppercase()));
            token_chars += t.chars().count();
        }
        let alnum = ident.chars().filter(|c| c.is_alphanumeric()).count();
        prop_assert_eq!(token_chars, alnum);
    }

    /// Match accuracy: 1 iff the proposal equals the intended set;
    /// adding a spurious pair never increases it.
    #[test]
    fn match_accuracy_behaviour(
        intended in proptest::collection::btree_set(0u32..40, 1..12),
        spurious in 100u32..200,
    ) {
        let intended: Vec<u32> = intended.into_iter().collect();
        let perfect = match_accuracy(&intended, &intended);
        prop_assert_eq!(perfect.accuracy, 1.0);

        let mut with_extra = intended.clone();
        with_extra.push(spurious);
        let worse = match_accuracy(&with_extra, &intended);
        prop_assert!(worse.accuracy < 1.0);
        prop_assert_eq!(worse.deletions, 1);

        let empty: Vec<u32> = vec![];
        let scratch = match_accuracy(&empty, &intended);
        prop_assert_eq!(scratch.accuracy, 0.0);
        prop_assert_eq!(scratch.additions, intended.len());
    }
}
