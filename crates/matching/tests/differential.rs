//! Differential tests for the two matcher fast paths, replayed over
//! every scenario in the standard registry:
//!
//! * candidate pruning ([`PrunePolicy::On`]) must emit the *identical*
//!   `ProposedMatch` sequence as the exhaustive path
//!   ([`PrunePolicy::Off`]) — same pairs, same order, bit-identical
//!   scores;
//! * the sparse flooding engine must reproduce the retained reference
//!   implementation bit-for-bit.

use efes_matching::flooding::{
    similarity_flooding, similarity_flooding_reference, FloodingConfig,
};
use efes_matching::{CombinedMatcher, MatcherConfig, PrunePolicy};
use efes_profiling::ProfileCache;
use efes_scenarios::standard_registry;

fn configs() -> Vec<MatcherConfig> {
    vec![
        MatcherConfig::default(),
        MatcherConfig {
            attr_threshold: 0.3,
            ..MatcherConfig::default()
        },
        MatcherConfig {
            attr_threshold: 0.8,
            name_weight: 0.9,
            ..MatcherConfig::default()
        },
        MatcherConfig {
            use_instances: false,
            ..MatcherConfig::default()
        },
    ]
}

#[test]
fn pruned_matching_equals_exhaustive_on_every_registry_scenario() {
    let registry = standard_registry();
    let names = registry.names();
    assert!(names.len() >= 10, "registry shrank: {names:?}");
    for name in names {
        let scenario = registry.get(name).unwrap();
        for config in configs() {
            for (src_idx, source) in scenario.sources.iter().enumerate() {
                let exhaustive = CombinedMatcher::new(config.clone())
                    .with_prune(PrunePolicy::Off)
                    .propose_attribute_matches(source, &scenario.target);
                let (pruned, stats) = CombinedMatcher::new(config.clone())
                    .with_prune(PrunePolicy::On)
                    .propose_attribute_matches_stats(
                        source,
                        &scenario.target,
                        &ProfileCache::new(),
                        efes_exec::ExecutionMode::from_env(),
                    );
                assert_eq!(
                    exhaustive.len(),
                    pruned.len(),
                    "{name} source {src_idx}: match count diverged"
                );
                for (e, p) in exhaustive.iter().zip(&pruned) {
                    assert_eq!(e.source, p.source, "{name} source {src_idx}");
                    assert_eq!(e.target, p.target, "{name} source {src_idx}");
                    assert_eq!(
                        e.score.to_bits(),
                        p.score.to_bits(),
                        "{name} source {src_idx}: {:?} scored {} pruned vs {} exhaustive",
                        e.source,
                        p.score,
                        e.score
                    );
                }
                assert_eq!(stats.pairs_total, stats.pairs_pruned + stats.pairs_scored);
            }
        }
    }
}

#[test]
fn pruning_actually_prunes_on_registry_scenarios() {
    // Not just correct but useful: across the registry the bound must
    // discard a substantial share of the pair grid at the default
    // threshold.
    let registry = standard_registry();
    let (mut total, mut pruned) = (0usize, 0usize);
    for name in registry.names() {
        let scenario = registry.get(name).unwrap();
        for source in &scenario.sources {
            let (_, stats) = CombinedMatcher::new(MatcherConfig::default())
                .with_prune(PrunePolicy::On)
                .propose_attribute_matches_stats(
                    source,
                    &scenario.target,
                    &ProfileCache::new(),
                    efes_exec::ExecutionMode::from_env(),
                );
            total += stats.pairs_total;
            pruned += stats.pairs_pruned;
        }
    }
    assert!(total > 0);
    let ratio = pruned as f64 / total as f64;
    assert!(
        ratio > 0.2,
        "pruning removed only {pruned}/{total} pairs ({ratio:.2})"
    );
}

#[test]
fn sparse_flooding_equals_reference_on_every_registry_scenario() {
    let registry = standard_registry();
    let config = FloodingConfig::default();
    for name in registry.names() {
        let scenario = registry.get(name).unwrap();
        for (src_idx, source) in scenario.sources.iter().enumerate() {
            let sparse = similarity_flooding(source, &scenario.target, &config);
            let reference = similarity_flooding_reference(source, &scenario.target, &config);
            assert_eq!(sparse.len(), reference.len(), "{name} source {src_idx}");
            for (pair, v) in &sparse {
                let r = reference[pair];
                assert_eq!(
                    v.to_bits(),
                    r.to_bits(),
                    "{name} source {src_idx} {pair:?}: sparse {v} != reference {r}"
                );
            }
        }
    }
}
