//! The `EFES_MATCH_PRUNE` escape hatch. Environment variables are
//! process-global, so this lives in its own integration-test binary
//! (one process) instead of sharing a test binary with tests that rely
//! on the default.

use efes_matching::{parse_match_prune, CombinedMatcher, MatcherConfig, PrunePolicy};
use efes_profiling::ProfileCache;
use efes_relational::{DataType, Database, DatabaseBuilder};

fn src() -> Database {
    DatabaseBuilder::new("s")
        .table("albums", |t| {
            t.attr("id", DataType::Integer)
                .attr("name", DataType::Text)
                .attr("genre", DataType::Text)
        })
        .build()
        .unwrap()
}

fn tgt() -> Database {
    DatabaseBuilder::new("t")
        .table("records", |t| {
            t.attr("id", DataType::Integer)
                .attr("title", DataType::Text)
                .attr("genre", DataType::Text)
        })
        .build()
        .unwrap()
}

#[test]
fn env_var_forces_the_exhaustive_path() {
    let (s, t) = (src(), tgt());
    let matcher = CombinedMatcher::new(MatcherConfig::default());
    let run = |m: &CombinedMatcher| {
        m.propose_attribute_matches_stats(
            &s,
            &t,
            &ProfileCache::new(),
            efes_exec::ExecutionMode::Sequential,
        )
    };

    std::env::set_var("EFES_MATCH_PRUNE", "off");
    assert!(!PrunePolicy::FromEnv.enabled());
    let (matches_off, stats_off) = run(&matcher);
    assert_eq!(stats_off.pairs_pruned, 0, "exhaustive path must not prune");
    assert_eq!(stats_off.pairs_scored, stats_off.pairs_total);

    std::env::set_var("EFES_MATCH_PRUNE", "on");
    assert!(PrunePolicy::FromEnv.enabled());
    let (matches_on, _) = run(&matcher);

    std::env::remove_var("EFES_MATCH_PRUNE");
    assert!(PrunePolicy::FromEnv.enabled(), "unset defaults to on");

    // The hatch changes the execution path, never the result.
    assert_eq!(matches_off.len(), matches_on.len());
    for (a, b) in matches_off.iter().zip(&matches_on) {
        assert_eq!((a.source, a.target), (b.source, b.target));
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }

    // Explicit policies override whatever the environment says.
    std::env::set_var("EFES_MATCH_PRUNE", "off");
    assert!(PrunePolicy::On.enabled());
    assert!(!PrunePolicy::Off.enabled());
    std::env::remove_var("EFES_MATCH_PRUNE");
}

#[test]
fn parse_accepts_the_documented_spellings() {
    for on in ["on", "1", "true", "yes", "", " ON "] {
        assert_eq!(parse_match_prune(on), Some(true), "{on:?}");
    }
    for off in ["off", "0", "false", "no", "OFF"] {
        assert_eq!(parse_match_prune(off), Some(false), "{off:?}");
    }
    assert_eq!(parse_match_prune("maybe"), None);
}
