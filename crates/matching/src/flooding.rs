//! A compact similarity-flooding implementation (Melnik et al., ICDE
//! 2002 — the paper's \[19\]).
//!
//! Schemas are viewed as labelled graphs (`schema → table → attribute`
//! edges). Initial pair similarities come from a seed function (here:
//! name similarity); each iteration propagates similarity from a pair to
//! its neighbour pairs connected by same-labelled edges, then normalises.
//! This is the fixpoint formula of the original paper restricted to the
//! basic propagation graph.

use crate::name::name_similarity;
use efes_relational::Database;
use std::collections::HashMap;

/// Flooding parameters.
#[derive(Debug, Clone)]
pub struct FloodingConfig {
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the max residual.
    pub epsilon: f64,
}

impl Default for FloodingConfig {
    fn default() -> Self {
        FloodingConfig {
            max_iterations: 50,
            epsilon: 1e-4,
        }
    }
}

/// A graph element of one schema: the schema root, a table, or an
/// attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SchemaElem {
    /// The schema root node.
    Root,
    /// A table, by index.
    Table(usize),
    /// An attribute, by `(table, attr)` indices.
    Attr(usize, usize),
}

fn elements(db: &Database) -> Vec<SchemaElem> {
    let mut out = vec![SchemaElem::Root];
    for (ti, t) in db.schema.tables().iter().enumerate() {
        out.push(SchemaElem::Table(ti));
        for ai in 0..t.arity() {
            out.push(SchemaElem::Attr(ti, ai));
        }
    }
    out
}

fn label(db: &Database, e: SchemaElem) -> String {
    match e {
        SchemaElem::Root => db.schema.name.clone(),
        SchemaElem::Table(t) => db.schema.table(efes_relational::TableId(t)).name.clone(),
        SchemaElem::Attr(t, a) => {
            let table = db.schema.table(efes_relational::TableId(t));
            table.attributes[a].name.clone()
        }
    }
}

/// Typed edges of the schema graph: (label, from, to).
fn edges(db: &Database) -> Vec<(&'static str, SchemaElem, SchemaElem)> {
    let mut out = Vec::new();
    for (ti, t) in db.schema.tables().iter().enumerate() {
        out.push(("table", SchemaElem::Root, SchemaElem::Table(ti)));
        for ai in 0..t.arity() {
            out.push(("column", SchemaElem::Table(ti), SchemaElem::Attr(ti, ai)));
        }
    }
    out
}

/// Run similarity flooding between two databases' schema graphs.
/// Returns the converged similarity of every element pair, normalised to
/// `[0,1]`, keyed by `(source element, target element)`.
pub fn similarity_flooding(
    source: &Database,
    target: &Database,
    config: &FloodingConfig,
) -> HashMap<(SchemaElem, SchemaElem), f64> {
    let src_elems = elements(source);
    let tgt_elems = elements(target);

    // σ⁰: seed with name similarity.
    let mut sigma: HashMap<(SchemaElem, SchemaElem), f64> = HashMap::new();
    for s in &src_elems {
        for t in &tgt_elems {
            sigma.insert((*s, *t), name_similarity(&label(source, *s), &label(target, *t)));
        }
    }

    // Propagation graph: pair (s,t) receives from (s',t') when edges
    // (l, s', s) and (l, t', t) share a label — and symmetrically from
    // children to parents.
    let src_edges = edges(source);
    let tgt_edges = edges(target);
    let mut neighbours: HashMap<(SchemaElem, SchemaElem), Vec<(SchemaElem, SchemaElem)>> =
        HashMap::new();
    for (ls, sf, st) in &src_edges {
        for (lt, tf, tt) in &tgt_edges {
            if ls == lt {
                neighbours.entry((*st, *tt)).or_default().push((*sf, *tf));
                neighbours.entry((*sf, *tf)).or_default().push((*st, *tt));
            }
        }
    }

    for _ in 0..config.max_iterations {
        let mut next: HashMap<(SchemaElem, SchemaElem), f64> = HashMap::new();
        for (pair, seed) in &sigma {
            let incoming: f64 = neighbours
                .get(pair)
                .map(|ns| {
                    ns.iter()
                        .map(|n| sigma.get(n).copied().unwrap_or(0.0) / ns.len() as f64)
                        .sum()
                })
                .unwrap_or(0.0);
            next.insert(*pair, seed + incoming);
        }
        // Normalise by the global maximum.
        let max = next.values().cloned().fold(0.0f64, f64::max).max(1e-12);
        for v in next.values_mut() {
            *v /= max;
        }
        // Convergence check.
        let residual = next
            .iter()
            .map(|(k, v)| (v - sigma.get(k).copied().unwrap_or(0.0)).abs())
            .fold(0.0f64, f64::max);
        sigma = next;
        if residual < config.epsilon {
            break;
        }
    }
    sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use efes_relational::{DataType, DatabaseBuilder};

    fn src() -> Database {
        DatabaseBuilder::new("s")
            .table("albums", |t| {
                t.attr("name", DataType::Text).attr("genre", DataType::Text)
            })
            .table("songs", |t| t.attr("length", DataType::Integer))
            .build()
            .unwrap()
    }

    fn tgt() -> Database {
        DatabaseBuilder::new("t")
            .table("records", |t| {
                t.attr("title", DataType::Text).attr("genre", DataType::Text)
            })
            .table("tracks", |t| t.attr("duration", DataType::Text))
            .build()
            .unwrap()
    }

    #[test]
    fn flooding_converges_and_ranks_structure() {
        let sigma = similarity_flooding(&src(), &tgt(), &FloodingConfig::default());
        let get = |s, t| sigma[&(s, t)];
        // genre (in the album-like table) should prefer the records table
        // genre over anything in tracks.
        let genre_genre = get(SchemaElem::Attr(0, 1), SchemaElem::Attr(0, 1));
        let genre_duration = get(SchemaElem::Attr(0, 1), SchemaElem::Attr(1, 0));
        assert!(genre_genre > genre_duration);
        // songs.length should land on tracks.duration (synonyms).
        let length_duration = get(SchemaElem::Attr(1, 0), SchemaElem::Attr(1, 0));
        let length_title = get(SchemaElem::Attr(1, 0), SchemaElem::Attr(0, 0));
        assert!(length_duration > length_title);
    }

    #[test]
    fn scores_are_normalised() {
        let sigma = similarity_flooding(&src(), &tgt(), &FloodingConfig::default());
        for v in sigma.values() {
            assert!((0.0..=1.0 + 1e-9).contains(v));
        }
        assert!(sigma.values().any(|v| *v > 0.99));
    }

    #[test]
    fn identical_schemas_maximise_diagonal() {
        let a = src();
        let sigma = similarity_flooding(&a, &a, &FloodingConfig::default());
        for (ti, t) in a.schema.tables().iter().enumerate() {
            for ai in 0..t.arity() {
                let e = SchemaElem::Attr(ti, ai);
                let own = sigma[&(e, e)];
                for (other_pair, v) in sigma.iter() {
                    if other_pair.0 == e && other_pair.1 != e {
                        assert!(own >= *v - 1e-9, "{e:?}: {own} vs {other_pair:?}: {v}");
                    }
                }
            }
        }
    }
}
