//! Similarity flooding (Melnik et al., ICDE 2002 — the paper's \[19\])
//! over schema graphs, in two interchangeable implementations.
//!
//! Schemas are viewed as labelled graphs (`schema → table → attribute`
//! edges). Initial pair similarities come from a seed function (here:
//! name similarity); each iteration propagates similarity from a pair to
//! its neighbour pairs connected by same-labelled edges, then normalises.
//! This is the fixpoint formula of the original paper restricted to the
//! basic propagation graph.
//!
//! [`similarity_flooding`] is the production engine: every
//! `(source element, target element)` pair gets a dense `u32` pair id,
//! the propagation graph is precomputed once as a CSR adjacency
//! (offsets + neighbour pair ids + one inverse-degree weight per pair),
//! and the fixpoint runs as sweeps over two flat `f64` buffers — no
//! per-iteration allocation, no hashing, labels interned once per solve.
//! Above a size cutoff the sweeps fan out over
//! [`efes_exec::parallel_chunks_mut`]; chunking never changes results
//! (each slot is a pure function of the previous buffer, and the max /
//! residual reductions are exact for `f64::max`).
//!
//! [`similarity_flooding_reference`] is the retained `HashMap`
//! implementation — the executable specification. The sparse engine is
//! differentially tested against it for *exact* `f64` equality: same
//! iteration count, same normalisation order, byte-identical scores.

use crate::name::name_similarity;
use efes_exec::{parallel_chunks_mut, parallel_map_ref, Cancelled, ExecutionMode, RunContext};
use efes_relational::Database;
use std::collections::HashMap;

/// Flooding parameters.
#[derive(Debug, Clone)]
pub struct FloodingConfig {
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the max residual.
    pub epsilon: f64,
}

impl Default for FloodingConfig {
    fn default() -> Self {
        FloodingConfig {
            max_iterations: 50,
            epsilon: 1e-4,
        }
    }
}

/// A graph element of one schema: the schema root, a table, or an
/// attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SchemaElem {
    /// The schema root node.
    Root,
    /// A table, by index.
    Table(usize),
    /// An attribute, by `(table, attr)` indices.
    Attr(usize, usize),
}

fn elements(db: &Database) -> Vec<SchemaElem> {
    let mut out = vec![SchemaElem::Root];
    for (ti, t) in db.schema.tables().iter().enumerate() {
        out.push(SchemaElem::Table(ti));
        for ai in 0..t.arity() {
            out.push(SchemaElem::Attr(ti, ai));
        }
    }
    out
}

/// The element's label, borrowed from the schema — no per-lookup clone.
fn label(db: &Database, e: SchemaElem) -> &str {
    match e {
        SchemaElem::Root => &db.schema.name,
        SchemaElem::Table(t) => &db.schema.table(efes_relational::TableId(t)).name,
        SchemaElem::Attr(t, a) => {
            let table = db.schema.table(efes_relational::TableId(t));
            &table.attributes[a].name
        }
    }
}

/// Typed edges of the schema graph: (label, from, to).
fn edges(db: &Database) -> Vec<(&'static str, SchemaElem, SchemaElem)> {
    let mut out = Vec::new();
    for (ti, t) in db.schema.tables().iter().enumerate() {
        out.push(("table", SchemaElem::Root, SchemaElem::Table(ti)));
        for ai in 0..t.arity() {
            out.push(("column", SchemaElem::Table(ti), SchemaElem::Attr(ti, ai)));
        }
    }
    out
}

/// Run similarity flooding between two databases' schema graphs.
/// Returns the converged similarity of every element pair, normalised to
/// `[0,1]`, keyed by `(source element, target element)`.
///
/// This is the sparse fixpoint engine (see the module docs); its output
/// is exactly — bit-for-bit — the output of
/// [`similarity_flooding_reference`]. The execution mode comes from
/// `EFES_THREADS`; use [`similarity_flooding_with`] to pin it.
pub fn similarity_flooding(
    source: &Database,
    target: &Database,
    config: &FloodingConfig,
) -> HashMap<(SchemaElem, SchemaElem), f64> {
    similarity_flooding_with(source, target, config, ExecutionMode::from_env())
}

/// [`similarity_flooding`] under an explicit [`ExecutionMode`]. The mode
/// only schedules the sweeps; scores are identical under any budget.
pub fn similarity_flooding_with(
    source: &Database,
    target: &Database,
    config: &FloodingConfig,
    mode: ExecutionMode,
) -> HashMap<(SchemaElem, SchemaElem), f64> {
    similarity_flooding_ctx(source, target, config, mode, &RunContext::unbounded())
        .expect("unbounded context never cancels")
}

/// [`similarity_flooding_with`], cancellable: the fixpoint checks `run`
/// between sweeps (an iteration is the natural checkpoint granularity —
/// each sweep is a bounded pass over the flat buffers) and aborts with
/// [`Cancelled`] when it fires. Scores are byte-identical to the
/// infallible entry points when `run` never fires.
pub fn similarity_flooding_ctx(
    source: &Database,
    target: &Database,
    config: &FloodingConfig,
    mode: ExecutionMode,
    run: &RunContext,
) -> Result<HashMap<(SchemaElem, SchemaElem), f64>, Cancelled> {
    run.check()?;
    let src_elems = elements(source);
    let tgt_elems = elements(target);
    let n_t = tgt_elems.len();
    let Some(pairs) = src_elems.len().checked_mul(n_t) else {
        return Ok(similarity_flooding_reference(source, target, config));
    };
    // Pair ids (and CSR neighbour ids) are u32; schemas wide enough to
    // overflow them could not hold the dense buffers anyway, so fall
    // back to the reference implementation instead of mis-indexing.
    if pairs > u32::MAX as usize {
        return Ok(similarity_flooding_reference(source, target, config));
    }

    // Below this pair count the flat buffers fit in cache and thread
    // spawn overhead dominates; run the sweeps sequentially.
    const PARALLEL_CUTOFF_PAIRS: usize = 1 << 14;
    let mode = if pairs >= PARALLEL_CUTOFF_PAIRS {
        mode
    } else {
        ExecutionMode::Sequential
    };

    // σ⁰: seed with name similarity, computed once per *unique* label
    // pair and scattered to element pairs. Schemas repeat attribute
    // names heavily (`id`, `name`, …), so this collapses the quadratic
    // seeding cost to |unique src labels| × |unique tgt labels| calls.
    let (src_label_ids, src_uniq) = intern_labels(source, &src_elems);
    let (tgt_label_ids, tgt_uniq) = intern_labels(target, &tgt_elems);
    let uniq_sims: Vec<Vec<f64>> = parallel_map_ref(mode, &src_uniq, |ls| {
        tgt_uniq.iter().map(|lt| name_similarity(ls, lt)).collect()
    });
    let mut cur: Vec<f64> = Vec::with_capacity(pairs);
    for &sl in &src_label_ids {
        let row = &uniq_sims[sl as usize];
        for &tl in &tgt_label_ids {
            cur.push(row[tl as usize]);
        }
    }

    let graph = PropagationGraph::build(source, target, &src_elems, &tgt_elems);
    let Some(graph) = graph else {
        return Ok(similarity_flooding_reference(source, target, config));
    };

    let mut next = vec![0.0f64; pairs];
    for _ in 0..config.max_iterations {
        run.check()?;
        // Sweep 1: next[p] = cur[p] + (Σ neighbours) · recip[p], with
        // the per-chunk running max folded into the same pass.
        let (offsets, neighbours, recip, cur_ref) =
            (&graph.offsets, &graph.neighbours, &graph.recip, &cur);
        let chunk_maxes = parallel_chunks_mut(mode, &mut next, |offset, chunk| {
            let mut chunk_max = 0.0f64;
            for (i, slot) in chunk.iter_mut().enumerate() {
                let p = offset + i;
                let (from, to) = (offsets[p] as usize, offsets[p + 1] as usize);
                let mut sum = 0.0f64;
                for &n in &neighbours[from..to] {
                    sum += cur_ref[n as usize];
                }
                let v = cur_ref[p] + sum * recip[p];
                *slot = v;
                chunk_max = chunk_max.max(v);
            }
            chunk_max
        });
        // Normalise by the global maximum (exact under any chunking:
        // f64::max is associative and commutative for non-NaN inputs).
        let max = chunk_maxes
            .into_iter()
            .fold(0.0f64, f64::max)
            .max(1e-12);
        // Sweep 2: normalise and compute the max residual vs. the
        // previous (already normalised) buffer.
        let cur_ref = &cur;
        let chunk_residuals = parallel_chunks_mut(mode, &mut next, |offset, chunk| {
            let mut chunk_residual = 0.0f64;
            for (i, v) in chunk.iter_mut().enumerate() {
                *v /= max;
                chunk_residual = chunk_residual.max((*v - cur_ref[offset + i]).abs());
            }
            chunk_residual
        });
        let residual = chunk_residuals.into_iter().fold(0.0f64, f64::max);
        std::mem::swap(&mut cur, &mut next);
        if residual < config.epsilon {
            break;
        }
    }

    let mut sigma = HashMap::with_capacity(pairs);
    for (si, s) in src_elems.iter().enumerate() {
        for (ti, t) in tgt_elems.iter().enumerate() {
            sigma.insert((*s, *t), cur[si * n_t + ti]);
        }
    }
    Ok(sigma)
}

/// Per-element label ids plus the unique label table, interned once per
/// solve — the seed matrix is computed over unique labels only.
fn intern_labels<'a>(db: &'a Database, elems: &[SchemaElem]) -> (Vec<u32>, Vec<&'a str>) {
    let mut ids = Vec::with_capacity(elems.len());
    let mut uniq: Vec<&'a str> = Vec::new();
    let mut by_label: HashMap<&'a str, u32> = HashMap::new();
    for e in elems {
        let l = label(db, *e);
        let id = *by_label.entry(l).or_insert_with(|| {
            uniq.push(l);
            (uniq.len() - 1) as u32
        });
        ids.push(id);
    }
    (ids, uniq)
}

/// The propagation graph in CSR form: pair `p`'s neighbours are
/// `neighbours[offsets[p]..offsets[p+1]]`, and `recip[p]` is
/// `1 / degree` (0 for isolated pairs, so `Σ · recip` stays `0.0`).
struct PropagationGraph {
    offsets: Vec<u32>,
    neighbours: Vec<u32>,
    recip: Vec<f64>,
}

impl PropagationGraph {
    /// Build the CSR adjacency with exactly the neighbour ordering the
    /// reference implementation produces (outer loop over source edges,
    /// inner over target edges), so per-pair float sums reassociate
    /// nothing. Returns `None` if the adjacency would overflow `u32`
    /// offsets (the caller falls back to the reference).
    fn build(
        source: &Database,
        target: &Database,
        src_elems: &[SchemaElem],
        tgt_elems: &[SchemaElem],
    ) -> Option<PropagationGraph> {
        let pairs = src_elems.len() * tgt_elems.len();
        let index_of: HashMap<SchemaElem, u32> = src_elems
            .iter()
            .enumerate()
            .map(|(i, e)| (*e, i as u32))
            .collect();
        let tgt_index_of: HashMap<SchemaElem, u32> = tgt_elems
            .iter()
            .enumerate()
            .map(|(i, e)| (*e, i as u32))
            .collect();
        let n_t = tgt_elems.len() as u64;
        let pid = |s: SchemaElem, t: SchemaElem| -> usize {
            (index_of[&s] as u64 * n_t + tgt_index_of[&t] as u64) as usize
        };

        let src_edges = edges(source);
        let tgt_edges = edges(target);

        // Pass 1: per-pair degree counts.
        let mut counts = vec![0u32; pairs];
        for (ls, sf, st) in &src_edges {
            for (lt, tf, tt) in &tgt_edges {
                if ls == lt {
                    counts[pid(*st, *tt)] += 1;
                    counts[pid(*sf, *tf)] += 1;
                }
            }
        }
        let total: usize = counts.iter().map(|&c| c as usize).sum();
        if total > u32::MAX as usize {
            return None;
        }

        let mut offsets = Vec::with_capacity(pairs + 1);
        let mut acc = 0u32;
        offsets.push(0u32);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let recip: Vec<f64> = counts
            .iter()
            .map(|&c| if c == 0 { 0.0 } else { 1.0 / c as f64 })
            .collect();

        // Pass 2: fill, preserving the reference's per-pair push order.
        let mut cursor: Vec<u32> = offsets[..pairs].to_vec();
        let mut neighbours = vec![0u32; total];
        for (ls, sf, st) in &src_edges {
            for (lt, tf, tt) in &tgt_edges {
                if ls == lt {
                    let child = pid(*st, *tt);
                    let parent = pid(*sf, *tf);
                    neighbours[cursor[child] as usize] = parent as u32;
                    cursor[child] += 1;
                    neighbours[cursor[parent] as usize] = child as u32;
                    cursor[parent] += 1;
                }
            }
        }
        Some(PropagationGraph {
            offsets,
            neighbours,
            recip,
        })
    }
}

/// The retained `HashMap` reference implementation of
/// [`similarity_flooding`] — the executable specification the sparse
/// engine is differentially tested against (exact equality).
pub fn similarity_flooding_reference(
    source: &Database,
    target: &Database,
    config: &FloodingConfig,
) -> HashMap<(SchemaElem, SchemaElem), f64> {
    let src_elems = elements(source);
    let tgt_elems = elements(target);

    // σ⁰: seed with name similarity. Labels are interned once per solve
    // (borrowed, not cloned per lookup).
    let src_labels: Vec<&str> = src_elems.iter().map(|e| label(source, *e)).collect();
    let tgt_labels: Vec<&str> = tgt_elems.iter().map(|e| label(target, *e)).collect();
    let mut sigma: HashMap<(SchemaElem, SchemaElem), f64> = HashMap::new();
    for (si, s) in src_elems.iter().enumerate() {
        for (ti, t) in tgt_elems.iter().enumerate() {
            sigma.insert((*s, *t), name_similarity(src_labels[si], tgt_labels[ti]));
        }
    }

    // Propagation graph: pair (s,t) receives from (s',t') when edges
    // (l, s', s) and (l, t', t) share a label — and symmetrically from
    // children to parents.
    let src_edges = edges(source);
    let tgt_edges = edges(target);
    let mut neighbours: HashMap<(SchemaElem, SchemaElem), Vec<(SchemaElem, SchemaElem)>> =
        HashMap::new();
    for (ls, sf, st) in &src_edges {
        for (lt, tf, tt) in &tgt_edges {
            if ls == lt {
                neighbours.entry((*st, *tt)).or_default().push((*sf, *tf));
                neighbours.entry((*sf, *tf)).or_default().push((*st, *tt));
            }
        }
    }

    for _ in 0..config.max_iterations {
        let mut next: HashMap<(SchemaElem, SchemaElem), f64> = HashMap::new();
        for (pair, seed) in &sigma {
            let incoming: f64 = neighbours
                .get(pair)
                .map(|ns| {
                    // One division per pair, hoisted out of the
                    // neighbour loop.
                    let recip = 1.0 / ns.len() as f64;
                    ns.iter()
                        .map(|n| sigma.get(n).copied().unwrap_or(0.0))
                        .sum::<f64>()
                        * recip
                })
                .unwrap_or(0.0);
            next.insert(*pair, seed + incoming);
        }
        // Normalise by the global maximum.
        let max = next.values().cloned().fold(0.0f64, f64::max).max(1e-12);
        for v in next.values_mut() {
            *v /= max;
        }
        // Convergence check.
        let residual = next
            .iter()
            .map(|(k, v)| (v - sigma.get(k).copied().unwrap_or(0.0)).abs())
            .fold(0.0f64, f64::max);
        sigma = next;
        if residual < config.epsilon {
            break;
        }
    }
    sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use efes_relational::{DataType, DatabaseBuilder};

    fn src() -> Database {
        DatabaseBuilder::new("s")
            .table("albums", |t| {
                t.attr("name", DataType::Text).attr("genre", DataType::Text)
            })
            .table("songs", |t| t.attr("length", DataType::Integer))
            .build()
            .unwrap()
    }

    fn tgt() -> Database {
        DatabaseBuilder::new("t")
            .table("records", |t| {
                t.attr("title", DataType::Text).attr("genre", DataType::Text)
            })
            .table("tracks", |t| t.attr("duration", DataType::Text))
            .build()
            .unwrap()
    }

    fn assert_exactly_equal(
        a: &HashMap<(SchemaElem, SchemaElem), f64>,
        b: &HashMap<(SchemaElem, SchemaElem), f64>,
    ) {
        assert_eq!(a.len(), b.len());
        for (pair, va) in a {
            let vb = b.get(pair).unwrap_or_else(|| panic!("missing {pair:?}"));
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "{pair:?}: sparse {va} != reference {vb}"
            );
        }
    }

    #[test]
    fn flooding_converges_and_ranks_structure() {
        let sigma = similarity_flooding(&src(), &tgt(), &FloodingConfig::default());
        let get = |s, t| sigma[&(s, t)];
        // genre (in the album-like table) should prefer the records table
        // genre over anything in tracks.
        let genre_genre = get(SchemaElem::Attr(0, 1), SchemaElem::Attr(0, 1));
        let genre_duration = get(SchemaElem::Attr(0, 1), SchemaElem::Attr(1, 0));
        assert!(genre_genre > genre_duration);
        // songs.length should land on tracks.duration (synonyms).
        let length_duration = get(SchemaElem::Attr(1, 0), SchemaElem::Attr(1, 0));
        let length_title = get(SchemaElem::Attr(1, 0), SchemaElem::Attr(0, 0));
        assert!(length_duration > length_title);
    }

    #[test]
    fn scores_are_normalised() {
        let sigma = similarity_flooding(&src(), &tgt(), &FloodingConfig::default());
        for v in sigma.values() {
            assert!((0.0..=1.0 + 1e-9).contains(v));
        }
        assert!(sigma.values().any(|v| *v > 0.99));
    }

    #[test]
    fn identical_schemas_maximise_diagonal() {
        let a = src();
        let sigma = similarity_flooding(&a, &a, &FloodingConfig::default());
        for (ti, t) in a.schema.tables().iter().enumerate() {
            for ai in 0..t.arity() {
                let e = SchemaElem::Attr(ti, ai);
                let own = sigma[&(e, e)];
                for (other_pair, v) in sigma.iter() {
                    if other_pair.0 == e && other_pair.1 != e {
                        assert!(own >= *v - 1e-9, "{e:?}: {own} vs {other_pair:?}: {v}");
                    }
                }
            }
        }
    }

    #[test]
    fn sparse_engine_matches_reference_exactly() {
        let (s, t) = (src(), tgt());
        for config in [
            FloodingConfig::default(),
            FloodingConfig {
                max_iterations: 1,
                epsilon: 0.0,
            },
            FloodingConfig {
                max_iterations: 200,
                epsilon: 1e-12,
            },
        ] {
            let sparse = similarity_flooding(&s, &t, &config);
            let reference = similarity_flooding_reference(&s, &t, &config);
            assert_exactly_equal(&sparse, &reference);
        }
    }

    #[test]
    fn sparse_engine_matches_reference_under_any_thread_budget() {
        let (s, t) = (src(), tgt());
        let config = FloodingConfig::default();
        let reference = similarity_flooding_reference(&s, &t, &config);
        for threads in [1, 2, 3, 8] {
            let sparse =
                similarity_flooding_with(&s, &t, &config, ExecutionMode::with_threads(threads));
            assert_exactly_equal(&sparse, &reference);
        }
    }

    #[test]
    fn degenerate_schemas_do_not_panic() {
        let config = FloodingConfig::default();
        // A table with zero attributes.
        let empty_table = DatabaseBuilder::new("e")
            .table("bare", |t| t)
            .build()
            .unwrap();
        // A single-table schema.
        let single = DatabaseBuilder::new("one")
            .table("only", |t| t.attr("id", DataType::Integer))
            .build()
            .unwrap();
        // A schema with no tables at all.
        let nothing = DatabaseBuilder::new("none").build().unwrap();
        for s in [&empty_table, &single, &nothing] {
            for t in [&empty_table, &single, &nothing] {
                let sparse = similarity_flooding(s, t, &config);
                let reference = similarity_flooding_reference(s, t, &config);
                assert_exactly_equal(&sparse, &reference);
                assert!(sparse.contains_key(&(SchemaElem::Root, SchemaElem::Root)));
            }
        }
    }
}
