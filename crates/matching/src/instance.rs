//! Instance-based matching: two attributes correspond when their value
//! distributions fit each other.
//!
//! This reuses the §5.1 fit machinery of `efes-profiling` symmetrically:
//! the similarity of attributes `a`, `b` is
//! `(fit(a→b) + fit(b→a)) / 2`, computed on profiles designated by each
//! other's datatype.

use efes_exec::{Cancelled, RunContext};
use efes_profiling::{AttributeProfile, DbTag, ProfileCache, ProfileKey};
use efes_relational::schema::{AttrId, TableId};
use efes_relational::Database;

/// Instance similarity of two concrete attributes in `[0,1]`.
pub fn instance_similarity(
    db_a: &Database,
    a: (TableId, AttrId),
    db_b: &Database,
    b: (TableId, AttrId),
) -> f64 {
    instance_similarity_cached(
        db_a,
        DbTag(0),
        a,
        db_b,
        DbTag(1),
        b,
        &ProfileCache::new(),
    )
}

/// Like [`instance_similarity`], profiling through a shared
/// [`ProfileCache`]. The matcher scores every source×target attribute
/// pair, so each column is profiled O(attributes-on-the-other-side)
/// times; with a cache every (column, designating type) profile is
/// computed once. `tag_a`/`tag_b` must consistently identify
/// `db_a`/`db_b` across all lookups on `cache`.
#[allow(clippy::too_many_arguments)]
pub fn instance_similarity_cached(
    db_a: &Database,
    tag_a: DbTag,
    a: (TableId, AttrId),
    db_b: &Database,
    tag_b: DbTag,
    b: (TableId, AttrId),
    cache: &ProfileCache,
) -> f64 {
    instance_similarity_cached_ctx(&RunContext::unbounded(), db_a, tag_a, a, db_b, tag_b, b, cache)
        .expect("unbounded context never cancels")
}

/// Like [`instance_similarity_cached`], but cancellable: the profile
/// fills behind the cache tick the run's checkpoint and abort promptly
/// when `run` fires (leaving the cache slot clean for the next caller).
#[allow(clippy::too_many_arguments)]
pub fn instance_similarity_cached_ctx(
    run: &RunContext,
    db_a: &Database,
    tag_a: DbTag,
    a: (TableId, AttrId),
    db_b: &Database,
    tag_b: DbTag,
    b: (TableId, AttrId),
    cache: &ProfileCache,
) -> Result<f64, Cancelled> {
    let type_a = db_a.schema.table(a.0).attribute(a.1).datatype;
    let type_b = db_b.schema.table(b.0).attribute(b.1).datatype;
    let key = |db, (table, attr), reference_type| ProfileKey {
        db,
        table,
        attr,
        reference_type,
    };

    // Profile each column under the *other* side's datatype — the same
    // designation rule the value fit detector uses.
    let pa_under_b = cache.of_attribute_ctx(run, db_a, key(tag_a, a, type_b))?;
    let pb = cache.of_attribute_ctx(run, db_b, key(tag_b, b, type_b))?;
    let fit_ab = AttributeProfile::fit_against(&pa_under_b, &pb).overall;

    let pb_under_a = cache.of_attribute_ctx(run, db_b, key(tag_b, b, type_a))?;
    let pa = cache.of_attribute_ctx(run, db_a, key(tag_a, a, type_a))?;
    let fit_ba = AttributeProfile::fit_against(&pb_under_a, &pa).overall;

    // Penalise incompatible values: a column that cannot even be cast
    // into the other's type is a weak match however the statistics look.
    let incompat_penalty = if pa_under_b.fill.has_incompatible() || pb_under_a.fill.has_incompatible()
    {
        0.5
    } else {
        1.0
    };
    Ok(((fit_ab + fit_ba) / 2.0) * incompat_penalty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use efes_relational::{DataType, DatabaseBuilder};

    fn db_with(name: &str, attr: &str, dt: DataType, rows: Vec<efes_relational::Value>) -> Database {
        let mut b = DatabaseBuilder::new(name).table("t", |t| t.attr(attr, dt));
        b = b.rows("t", rows.into_iter().map(|v| vec![v]).collect());
        b.build().unwrap()
    }

    #[test]
    fn same_distribution_scores_high() {
        let a = db_with(
            "a",
            "dur",
            DataType::Text,
            vec!["4:43".into(), "6:55".into(), "3:26".into()],
        );
        let b = db_with(
            "b",
            "len",
            DataType::Text,
            vec!["5:01".into(), "2:58".into(), "7:33".into()],
        );
        let s = instance_similarity(&a, (TableId(0), AttrId(0)), &b, (TableId(0), AttrId(0)));
        assert!(s > 0.8, "{s}");
    }

    #[test]
    fn format_mismatch_scores_low() {
        let durations = db_with(
            "a",
            "duration",
            DataType::Text,
            vec!["4:43".into(), "6:55".into(), "3:26".into()],
        );
        let millis = db_with(
            "b",
            "length",
            DataType::Integer,
            vec![215900.into(), 238100.into(), 218200.into()],
        );
        let s = instance_similarity(
            &durations,
            (TableId(0), AttrId(0)),
            &millis,
            (TableId(0), AttrId(0)),
        );
        assert!(s < 0.6, "{s}");
    }

    #[test]
    fn cached_matches_uncached_and_reuses_profiles() {
        let a = db_with("a", "x", DataType::Integer, vec![1.into(), 2.into(), 3.into()]);
        let b = db_with("b", "y", DataType::Integer, vec![2.into(), 3.into(), 4.into()]);
        let cache = ProfileCache::new();
        let plain = instance_similarity(&a, (TableId(0), AttrId(0)), &b, (TableId(0), AttrId(0)));
        let cached = |cache: &ProfileCache| {
            instance_similarity_cached(
                &a,
                DbTag(0),
                (TableId(0), AttrId(0)),
                &b,
                DbTag(1),
                (TableId(0), AttrId(0)),
                cache,
            )
        };
        assert_eq!(plain, cached(&cache));
        // Same datatypes on both sides: only 2 distinct profiles exist.
        assert_eq!(cache.misses(), 2);
        assert_eq!(cached(&cache), plain);
        assert_eq!(cache.misses(), 2, "second call must be all hits");
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = db_with("a", "x", DataType::Integer, vec![1.into(), 2.into(), 3.into()]);
        let b = db_with("b", "y", DataType::Integer, vec![2.into(), 3.into(), 4.into()]);
        let s1 = instance_similarity(&a, (TableId(0), AttrId(0)), &b, (TableId(0), AttrId(0)));
        let s2 = instance_similarity(&b, (TableId(0), AttrId(0)), &a, (TableId(0), AttrId(0)));
        assert!((s1 - s2).abs() < 1e-12);
    }
}
