//! Instance-based matching: two attributes correspond when their value
//! distributions fit each other.
//!
//! This reuses the §5.1 fit machinery of `efes-profiling` symmetrically:
//! the similarity of attributes `a`, `b` is
//! `(fit(a→b) + fit(b→a)) / 2`, computed on profiles designated by each
//! other's datatype.

use efes_profiling::AttributeProfile;
use efes_relational::schema::{AttrId, TableId};
use efes_relational::Database;

/// Instance similarity of two concrete attributes in `[0,1]`.
pub fn instance_similarity(
    db_a: &Database,
    a: (TableId, AttrId),
    db_b: &Database,
    b: (TableId, AttrId),
) -> f64 {
    let type_a = db_a.schema.table(a.0).attribute(a.1).datatype;
    let type_b = db_b.schema.table(b.0).attribute(b.1).datatype;

    // Profile each column under the *other* side's datatype — the same
    // designation rule the value fit detector uses.
    let pa_under_b = AttributeProfile::of_attribute(db_a, a.0, a.1, type_b);
    let pb = AttributeProfile::of_attribute(db_b, b.0, b.1, type_b);
    let fit_ab = AttributeProfile::fit_against(&pa_under_b, &pb).overall;

    let pb_under_a = AttributeProfile::of_attribute(db_b, b.0, b.1, type_a);
    let pa = AttributeProfile::of_attribute(db_a, a.0, a.1, type_a);
    let fit_ba = AttributeProfile::fit_against(&pb_under_a, &pa).overall;

    // Penalise incompatible values: a column that cannot even be cast
    // into the other's type is a weak match however the statistics look.
    let incompat_penalty = if pa_under_b.fill.has_incompatible() || pb_under_a.fill.has_incompatible()
    {
        0.5
    } else {
        1.0
    };
    ((fit_ab + fit_ba) / 2.0) * incompat_penalty
}

#[cfg(test)]
mod tests {
    use super::*;
    use efes_relational::{DataType, DatabaseBuilder};

    fn db_with(name: &str, attr: &str, dt: DataType, rows: Vec<efes_relational::Value>) -> Database {
        let mut b = DatabaseBuilder::new(name).table("t", |t| t.attr(attr, dt));
        b = b.rows("t", rows.into_iter().map(|v| vec![v]).collect());
        b.build().unwrap()
    }

    #[test]
    fn same_distribution_scores_high() {
        let a = db_with(
            "a",
            "dur",
            DataType::Text,
            vec!["4:43".into(), "6:55".into(), "3:26".into()],
        );
        let b = db_with(
            "b",
            "len",
            DataType::Text,
            vec!["5:01".into(), "2:58".into(), "7:33".into()],
        );
        let s = instance_similarity(&a, (TableId(0), AttrId(0)), &b, (TableId(0), AttrId(0)));
        assert!(s > 0.8, "{s}");
    }

    #[test]
    fn format_mismatch_scores_low() {
        let durations = db_with(
            "a",
            "duration",
            DataType::Text,
            vec!["4:43".into(), "6:55".into(), "3:26".into()],
        );
        let millis = db_with(
            "b",
            "length",
            DataType::Integer,
            vec![215900.into(), 238100.into(), 218200.into()],
        );
        let s = instance_similarity(
            &durations,
            (TableId(0), AttrId(0)),
            &millis,
            (TableId(0), AttrId(0)),
        );
        assert!(s < 0.6, "{s}");
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = db_with("a", "x", DataType::Integer, vec![1.into(), 2.into(), 3.into()]);
        let b = db_with("b", "y", DataType::Integer, vec![2.into(), 3.into(), 4.into()]);
        let s1 = instance_similarity(&a, (TableId(0), AttrId(0)), &b, (TableId(0), AttrId(0)));
        let s2 = instance_similarity(&b, (TableId(0), AttrId(0)), &a, (TableId(0), AttrId(0)));
        assert!((s1 - s2).abs() < 1e-12);
    }
}
