//! # efes-matching
//!
//! Schema-matching substrate for EFES (*Estimating Data Integration and
//! Cleaning Effort*, EDBT 2015).
//!
//! The paper *assumes* correspondences are given, noting *"they can be
//! automatically discovered with schema matching tools"* (§3.1) and names
//! dropping that assumption as future work (§7), pointing at Melnik's
//! similarity flooding and its accuracy measure. This crate provides that
//! substrate:
//!
//! * [`similarity`] — string similarities (Levenshtein, Jaro-Winkler,
//!   trigram Jaccard) and identifier tokenisation;
//! * [`name`] — a name-based matcher over table/attribute identifiers;
//! * [`instance`] — an instance-based matcher driven by the profiling
//!   statistics (two attributes match when their value distributions fit
//!   each other);
//! * [`combined`] — weighted combination, greedy stable 1:1 assignment,
//!   and emission of [`efes_relational::CorrespondenceSet`]s;
//! * [`flooding`] — a compact similarity-flooding implementation over
//!   schema graphs (Melnik, Garcia-Molina, Rahm, ICDE 2002 — the paper's
//!   \[19\]);
//! * [`accuracy`] — Melnik's match *accuracy*: the fraction of needed
//!   user additions/deletions saved by a proposed match result, which §7
//!   suggests as the bridge from matcher output to mapping-effort
//!   estimates.

#![warn(missing_docs)]

pub mod accuracy;
pub mod combined;
pub mod flooding;
pub mod instance;
pub mod name;
pub mod similarity;

pub use accuracy::{match_accuracy, MatchDiff};
pub use combined::{
    parse_match_prune, CombinedMatcher, MatchStats, MatcherConfig, ProposedMatch, PrunePolicy,
    MATCH_PRUNE_ENV_VAR,
};
pub use flooding::{
    similarity_flooding, similarity_flooding_ctx, similarity_flooding_reference,
    similarity_flooding_with, FloodingConfig,
};
pub use instance::{instance_similarity, instance_similarity_cached, instance_similarity_cached_ctx};
pub use name::{name_similarity, NameIndex};
pub use similarity::{jaro_winkler, levenshtein, tokenize, trigram_jaccard};
