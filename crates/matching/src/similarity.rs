//! String similarity primitives and identifier tokenisation.

use std::collections::HashSet;

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalised Levenshtein similarity in `[0,1]`.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaro similarity.
fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                matches_a.push(*ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(b_used.iter())
        .filter(|(_, used)| **used)
        .map(|(c, _)| *c)
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity (prefix boost up to 4 chars, p = 0.1).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    (j + prefix * 0.1 * (1.0 - j)).min(1.0)
}

/// Character-trigram Jaccard similarity (padded with `^`/`$`).
pub fn trigram_jaccard(a: &str, b: &str) -> f64 {
    let grams = |s: &str| -> HashSet<String> {
        let padded: Vec<char> = std::iter::once('^')
            .chain(s.chars())
            .chain(std::iter::once('$'))
            .collect();
        padded.windows(3).map(|w| w.iter().collect()).collect()
    };
    let ga = grams(a);
    let gb = grams(b);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    let inter = ga.intersection(&gb).count() as f64;
    let union = ga.union(&gb).count() as f64;
    if union == 0.0 {
        1.0
    } else {
        inter / union
    }
}

/// Split an identifier into lowercase tokens at `_`, `-`, whitespace,
/// digits↔letters boundaries and camelCase humps: `artistList_2` →
/// `["artist", "list", "2"]`.
pub fn tokenize(ident: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut prev: Option<char> = None;
    for c in ident.chars() {
        let boundary = match (prev, c) {
            (_, '_' | '-' | ' ' | '.') => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
                prev = Some(c);
                continue;
            }
            (Some(p), c) if p.is_lowercase() && c.is_uppercase() => true,
            (Some(p), c) if p.is_alphabetic() && c.is_ascii_digit() => true,
            (Some(p), c) if p.is_ascii_digit() && c.is_alphabetic() => true,
            _ => false,
        };
        if boundary && !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
        cur.extend(c.to_lowercase());
        prev = Some(c);
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Token-set overlap similarity: Jaccard over the tokenised identifiers,
/// with fuzzy token equality (Jaro-Winkler ≥ 0.9 counts as a hit).
pub fn token_similarity(a: &str, b: &str) -> f64 {
    let ta = tokenize(a);
    let tb = tokenize(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let mut hit = 0usize;
    let mut used = vec![false; tb.len()];
    for x in &ta {
        for (j, y) in tb.iter().enumerate() {
            if !used[j] && (x == y || jaro_winkler(x, y) >= 0.9) {
                used[j] = true;
                hit += 1;
                break;
            }
        }
    }
    hit as f64 / (ta.len() + tb.len() - hit) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert!((levenshtein_similarity("title", "title") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaro_winkler_prefers_shared_prefixes() {
        let jw1 = jaro_winkler("artist", "artists");
        let jw2 = jaro_winkler("artist", "tsitra");
        assert!(jw1 > 0.9);
        assert!(jw1 > jw2);
        assert_eq!(jaro_winkler("x", "x"), 1.0);
        assert_eq!(jaro_winkler("", "abc"), 0.0);
    }

    #[test]
    fn trigram_jaccard_bounds() {
        assert!((trigram_jaccard("duration", "duration") - 1.0).abs() < 1e-12);
        assert_eq!(trigram_jaccard("abc", "xyz"), 0.0);
        let partial = trigram_jaccard("duration", "durations");
        assert!(partial > 0.5 && partial < 1.0);
    }

    #[test]
    fn tokenizer_handles_cases() {
        assert_eq!(tokenize("artist_list"), vec!["artist", "list"]);
        assert_eq!(tokenize("artistList"), vec!["artist", "list"]);
        assert_eq!(tokenize("ArtistList2"), vec!["artist", "list", "2"]);
        assert_eq!(tokenize("id"), vec!["id"]);
        assert_eq!(tokenize("__x__"), vec!["x"]);
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn token_similarity_matches_reordered_names() {
        assert!((token_similarity("artist_list", "list_artist") - 1.0).abs() < 1e-12);
        assert!(token_similarity("album_name", "name") > 0.4);
        assert_eq!(token_similarity("genre", "duration"), 0.0);
    }

    #[test]
    fn similarities_are_symmetric() {
        for (a, b) in [("title", "titel"), ("record", "records"), ("x", "")] {
            assert!((jaro_winkler(a, b) - jaro_winkler(b, a)).abs() < 1e-12);
            assert!((trigram_jaccard(a, b) - trigram_jaccard(b, a)).abs() < 1e-12);
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }
}
