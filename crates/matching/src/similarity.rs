//! String similarity primitives and identifier tokenisation.
//!
//! The schema matcher calls these for every pair of attribute names, so
//! the hot functions avoid per-call allocation: ASCII inputs (the
//! overwhelming majority of identifiers) are compared byte-wise straight
//! off the `&str` — for ASCII, byte equality and char equality coincide
//! and byte length equals char length — and non-ASCII inputs decode into
//! thread-local scratch buffers that are reused across calls, as are the
//! Levenshtein DP rows and the Jaro match tables.

use std::cell::RefCell;
use std::collections::HashSet;

/// Reusable per-thread buffers for the similarity kernels.
#[derive(Default)]
struct Scratch {
    chars_a: Vec<char>,
    chars_b: Vec<char>,
    dp_prev: Vec<usize>,
    dp_cur: Vec<usize>,
    b_used: Vec<bool>,
    match_idx: Vec<usize>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

fn fill_chars(s: &str, buf: &mut Vec<char>) {
    buf.clear();
    buf.extend(s.chars());
}

/// Two-row Levenshtein DP over unit slices, reusing the row buffers.
fn levenshtein_impl<T: PartialEq>(
    a: &[T],
    b: &[T],
    prev: &mut Vec<usize>,
    cur: &mut Vec<usize>,
) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    prev.clear();
    prev.extend(0..=b.len());
    cur.clear();
    cur.resize(b.len() + 1, 0);
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(prev, cur);
    }
    prev[b.len()]
}

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
pub fn levenshtein(a: &str, b: &str) -> usize {
    levenshtein_with_lens(a, b).0
}

/// Edit distance plus both unit lengths, computed in the same call so
/// [`levenshtein_similarity`] does not re-walk either string.
fn levenshtein_with_lens(a: &str, b: &str) -> (usize, usize, usize) {
    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        if a.is_ascii() && b.is_ascii() {
            let d = levenshtein_impl(a.as_bytes(), b.as_bytes(), &mut s.dp_prev, &mut s.dp_cur);
            (d, a.len(), b.len())
        } else {
            fill_chars(a, &mut s.chars_a);
            fill_chars(b, &mut s.chars_b);
            let d = levenshtein_impl(&s.chars_a, &s.chars_b, &mut s.dp_prev, &mut s.dp_cur);
            (d, s.chars_a.len(), s.chars_b.len())
        }
    })
}

/// Normalised Levenshtein similarity in `[0,1]`.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let (dist, alen, blen) = levenshtein_with_lens(a, b);
    let max = alen.max(blen);
    if max == 0 {
        return 1.0;
    }
    1.0 - dist as f64 / max as f64
}

/// Jaro similarity over unit slices. `b_used` and `match_idx` are
/// caller-provided scratch (cleared here).
fn jaro_impl<T: PartialEq + Copy>(
    a: &[T],
    b: &[T],
    b_used: &mut Vec<bool>,
    match_idx: &mut Vec<usize>,
) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    b_used.clear();
    b_used.resize(b.len(), false);
    match_idx.clear();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for (j, used) in b_used.iter_mut().enumerate().take(hi).skip(lo) {
            if !*used && b[j] == *ca {
                *used = true;
                match_idx.push(i);
                break;
            }
        }
    }
    let m = match_idx.len();
    if m == 0 {
        return 0.0;
    }
    let transpositions = match_idx
        .iter()
        .zip((0..b.len()).filter(|&j| b_used[j]))
        .filter(|&(&i, j)| a[i] != b[j])
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro similarity.
fn jaro(a: &str, b: &str) -> f64 {
    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        if a.is_ascii() && b.is_ascii() {
            jaro_impl(a.as_bytes(), b.as_bytes(), &mut s.b_used, &mut s.match_idx)
        } else {
            fill_chars(a, &mut s.chars_a);
            fill_chars(b, &mut s.chars_b);
            jaro_impl(&s.chars_a, &s.chars_b, &mut s.b_used, &mut s.match_idx)
        }
    })
}

/// Jaro-Winkler similarity (prefix boost up to 4 chars, p = 0.1).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    (j + prefix * 0.1 * (1.0 - j)).min(1.0)
}

/// The padded character-trigram set of `s` — the same grams
/// [`trigram_jaccard`] compares, materialised for index construction
/// (cold path: once per unique name, not per pair).
pub(crate) fn trigram_set(s: &str) -> HashSet<[char; 3]> {
    let mut buf: Vec<char> = Vec::with_capacity(s.len() + 2);
    buf.push('^');
    buf.extend(s.chars());
    buf.push('$');
    buf.windows(3).map(|w| [w[0], w[1], w[2]]).collect()
}

/// Character-trigram Jaccard similarity (padded with `^`/`$`).
pub fn trigram_jaccard(a: &str, b: &str) -> f64 {
    // Fixed-width `[char; 3]` grams: no per-gram String allocation.
    let grams = |s: &str, buf: &mut Vec<char>| -> HashSet<[char; 3]> {
        buf.clear();
        buf.push('^');
        buf.extend(s.chars());
        buf.push('$');
        buf.windows(3).map(|w| [w[0], w[1], w[2]]).collect()
    };
    let (ga, gb) = SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        (grams(a, &mut s.chars_a), grams(b, &mut s.chars_b))
    });
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    let inter = ga.intersection(&gb).count() as f64;
    let union = ga.union(&gb).count() as f64;
    if union == 0.0 {
        1.0
    } else {
        inter / union
    }
}

/// Split an identifier into lowercase tokens at `_`, `-`, whitespace,
/// digits↔letters boundaries and camelCase humps: `artistList_2` →
/// `["artist", "list", "2"]`.
pub fn tokenize(ident: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut prev: Option<char> = None;
    for c in ident.chars() {
        let boundary = match (prev, c) {
            (_, '_' | '-' | ' ' | '.') => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
                prev = Some(c);
                continue;
            }
            (Some(p), c) if p.is_lowercase() && c.is_uppercase() => true,
            (Some(p), c) if p.is_alphabetic() && c.is_ascii_digit() => true,
            (Some(p), c) if p.is_ascii_digit() && c.is_alphabetic() => true,
            _ => false,
        };
        if boundary && !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
        cur.extend(c.to_lowercase());
        prev = Some(c);
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Token-set overlap similarity: Jaccard over the tokenised identifiers,
/// with fuzzy token equality (Jaro-Winkler ≥ 0.9 counts as a hit).
pub fn token_similarity(a: &str, b: &str) -> f64 {
    let ta = tokenize(a);
    let tb = tokenize(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let mut hit = 0usize;
    let mut used = vec![false; tb.len()];
    for x in &ta {
        for (j, y) in tb.iter().enumerate() {
            if !used[j] && (x == y || jaro_winkler(x, y) >= 0.9) {
                used[j] = true;
                hit += 1;
                break;
            }
        }
    }
    hit as f64 / (ta.len() + tb.len() - hit) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert!((levenshtein_similarity("title", "title") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_ascii_uses_char_semantics() {
        // Multi-byte chars must count as one unit, not several bytes.
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert!((levenshtein_similarity("café", "café") - 1.0).abs() < 1e-12);
        assert!((levenshtein_similarity("café", "cafe") - 0.75).abs() < 1e-12);
        assert_eq!(jaro_winkler("über", "über"), 1.0);
        assert!((trigram_jaccard("naïve", "naïve") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ascii_and_char_paths_agree() {
        // The byte fast path must report the same distance and lengths
        // the char-counting definition would.
        for (a, b) in [("artist", "artists"), ("kitten", "sitting"), ("", "x")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
            let (d, alen, blen) = levenshtein_with_lens(a, b);
            assert_eq!(alen, a.chars().count());
            assert_eq!(blen, b.chars().count());
            assert_eq!(d, levenshtein(a, b));
        }
    }

    #[test]
    fn jaro_winkler_prefers_shared_prefixes() {
        let jw1 = jaro_winkler("artist", "artists");
        let jw2 = jaro_winkler("artist", "tsitra");
        assert!(jw1 > 0.9);
        assert!(jw1 > jw2);
        assert_eq!(jaro_winkler("x", "x"), 1.0);
        assert_eq!(jaro_winkler("", "abc"), 0.0);
    }

    #[test]
    fn trigram_jaccard_bounds() {
        assert!((trigram_jaccard("duration", "duration") - 1.0).abs() < 1e-12);
        assert_eq!(trigram_jaccard("abc", "xyz"), 0.0);
        let partial = trigram_jaccard("duration", "durations");
        assert!(partial > 0.5 && partial < 1.0);
    }

    #[test]
    fn tokenizer_handles_cases() {
        assert_eq!(tokenize("artist_list"), vec!["artist", "list"]);
        assert_eq!(tokenize("artistList"), vec!["artist", "list"]);
        assert_eq!(tokenize("ArtistList2"), vec!["artist", "list", "2"]);
        assert_eq!(tokenize("id"), vec!["id"]);
        assert_eq!(tokenize("__x__"), vec!["x"]);
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn token_similarity_matches_reordered_names() {
        assert!((token_similarity("artist_list", "list_artist") - 1.0).abs() < 1e-12);
        assert!(token_similarity("album_name", "name") > 0.4);
        assert_eq!(token_similarity("genre", "duration"), 0.0);
    }

    #[test]
    fn similarities_are_symmetric() {
        for (a, b) in [("title", "titel"), ("record", "records"), ("x", ""), ("café", "cafe")] {
            assert!((jaro_winkler(a, b) - jaro_winkler(b, a)).abs() < 1e-12);
            assert!((trigram_jaccard(a, b) - trigram_jaccard(b, a)).abs() < 1e-12);
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }
}
