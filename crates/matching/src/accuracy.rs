//! Melnik's match accuracy: *"a novel measure to estimate how much effort
//! it costs the user to modify the proposed match result into the
//! intended result in terms of additions and deletions of matching
//! attribute pairs"* (paper §2, citing \[19\]; §7 proposes it as the
//! bridge between matcher output and correspondence-creation effort).

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The difference between a proposed and an intended match result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchDiff {
    /// Pairs the user must delete from the proposal (false positives).
    pub deletions: usize,
    /// Pairs the user must add to the proposal (false negatives).
    pub additions: usize,
    /// Pairs the proposal got right.
    pub correct: usize,
    /// Melnik accuracy: `1 − (deletions + additions) / |intended|`,
    /// clamped at 0. Accuracy 1 means no manual work; ≤ 0 means the
    /// proposal is no better than starting from scratch.
    pub accuracy: f64,
}

/// Compute the match accuracy of `proposed` against `intended`, both as
/// sets of element-pair identifiers (any `Ord` id works; the EFES
/// pipeline uses `((table, attr), (table, attr))` tuples).
pub fn match_accuracy<T: Ord + Clone>(proposed: &[T], intended: &[T]) -> MatchDiff {
    let p: BTreeSet<&T> = proposed.iter().collect();
    let i: BTreeSet<&T> = intended.iter().collect();
    let correct = p.intersection(&i).count();
    let deletions = p.len() - correct;
    let additions = i.len() - correct;
    let accuracy = if i.is_empty() {
        if deletions == 0 {
            1.0
        } else {
            0.0
        }
    } else {
        (1.0 - (deletions + additions) as f64 / i.len() as f64).max(0.0)
    };
    MatchDiff {
        deletions,
        additions,
        correct,
        accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_proposal_scores_one() {
        let intended = vec![(0, 0), (1, 1), (2, 2)];
        let d = match_accuracy(&intended, &intended);
        assert_eq!(d.accuracy, 1.0);
        assert_eq!(d.deletions, 0);
        assert_eq!(d.additions, 0);
        assert_eq!(d.correct, 3);
    }

    #[test]
    fn missing_and_spurious_pairs_cost() {
        let proposed = vec![(0, 0), (9, 9)];
        let intended = vec![(0, 0), (1, 1)];
        let d = match_accuracy(&proposed, &intended);
        assert_eq!(d.deletions, 1);
        assert_eq!(d.additions, 1);
        assert_eq!(d.correct, 1);
        assert!((d.accuracy - 0.0).abs() < 1e-12); // 1 - 2/2
    }

    #[test]
    fn worse_than_scratch_clamps_to_zero() {
        let proposed = vec![(5, 5), (6, 6), (7, 7)];
        let intended = vec![(0, 0)];
        let d = match_accuracy(&proposed, &intended);
        assert_eq!(d.accuracy, 0.0);
    }

    #[test]
    fn empty_intended_set() {
        let d = match_accuracy::<(usize, usize)>(&[], &[]);
        assert_eq!(d.accuracy, 1.0);
        let d = match_accuracy(&[(1, 1)], &[]);
        assert_eq!(d.accuracy, 0.0);
    }
}
