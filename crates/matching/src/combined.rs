//! The combined matcher: weighted name + instance similarity, greedy 1:1
//! assignment, and emission of correspondence sets consumable by the EFES
//! pipeline.
//!
//! By default the matcher *prunes* the source×target attribute grid
//! before running any expensive kernel: a [`NameIndex`] over the unique
//! target attribute names yields a sound upper bound on every pair's
//! final score, and pairs that provably cannot clear `attr_threshold`
//! are skipped. Pruning never changes output — the surviving pairs are
//! scored by the identical code, the dropped pairs would have been
//! filtered by the threshold anyway (differentially tested in
//! `tests/differential.rs`) — and `EFES_MATCH_PRUNE=off` (or
//! [`PrunePolicy::Off`]) forces the exhaustive path at run time.

use crate::instance::instance_similarity_cached_ctx;
use crate::name::{name_similarity, NameIndex, BOUND_SLACK};
use efes_exec::{parallel_map, parallel_map_ref, Cancelled, ExecutionMode, RunContext};
use efes_profiling::{DbTag, ProfileCache};
use efes_relational::schema::{AttrId, TableId};
use efes_relational::{
    Correspondence, CorrespondenceSet, Database, SourceId,
};
use serde::{Deserialize, Serialize};
use std::sync::Once;

/// Environment variable controlling candidate pruning (`on`/`off`).
pub const MATCH_PRUNE_ENV_VAR: &str = "EFES_MATCH_PRUNE";

/// Parse an `EFES_MATCH_PRUNE` value; `None` means unparsable.
pub fn parse_match_prune(raw: &str) -> Option<bool> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "on" | "1" | "true" | "yes" | "" => Some(true),
        "off" | "0" | "false" | "no" => Some(false),
        _ => None,
    }
}

fn prune_env_enabled() -> bool {
    match std::env::var(MATCH_PRUNE_ENV_VAR) {
        Err(_) => true,
        Ok(raw) => match parse_match_prune(&raw) {
            Some(enabled) => enabled,
            None => {
                static WARN_ONCE: Once = Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "warning: unparsable {MATCH_PRUNE_ENV_VAR}={raw:?}; \
                         expected on/off (or 1/0, true/false, yes/no), keeping pruning on"
                    );
                });
                true
            }
        },
    }
}

/// Whether the matcher prunes candidate pairs before exact scoring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PrunePolicy {
    /// Consult [`MATCH_PRUNE_ENV_VAR`] per run (the default; unset
    /// means on).
    #[default]
    FromEnv,
    /// Always prune.
    On,
    /// Always score exhaustively.
    Off,
}

impl PrunePolicy {
    /// Resolve the policy to a concrete on/off for this run.
    pub fn enabled(self) -> bool {
        match self {
            PrunePolicy::On => true,
            PrunePolicy::Off => false,
            PrunePolicy::FromEnv => prune_env_enabled(),
        }
    }
}

/// Counters from one attribute-matching run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Size of the full source×target attribute grid.
    pub pairs_total: usize,
    /// Pairs skipped because their score bound cannot reach the
    /// threshold (always 0 on the exhaustive path).
    pub pairs_pruned: usize,
    /// Pairs that went through exact scoring.
    pub pairs_scored: usize,
}

/// Matcher configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatcherConfig {
    /// Weight of name similarity (instance similarity gets `1 - w`).
    pub name_weight: f64,
    /// Minimum combined score for a proposed attribute correspondence.
    pub attr_threshold: f64,
    /// Minimum aggregated score for a proposed table correspondence.
    pub table_threshold: f64,
    /// Use instance data at all (pure name matching when false — the
    /// right choice for empty targets).
    pub use_instances: bool,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            name_weight: 0.6,
            attr_threshold: 0.55,
            table_threshold: 0.45,
            use_instances: true,
        }
    }
}

/// (source attr, target attr, name score) — one candidate pair after
/// name scoring, before instance scoring.
type NameScoredPair = ((TableId, AttrId), (TableId, AttrId), f64);

/// Per-element interned name ids plus the unique-name table.
fn intern_names<'a>(attrs: &[((TableId, AttrId), &'a str)]) -> (Vec<u32>, Vec<&'a str>) {
    let mut ids = Vec::with_capacity(attrs.len());
    let mut uniq: Vec<&'a str> = Vec::new();
    let mut by_name: std::collections::HashMap<&'a str, u32> = std::collections::HashMap::new();
    for (_, name) in attrs {
        let id = *by_name.entry(name).or_insert_with(|| {
            uniq.push(name);
            (uniq.len() - 1) as u32
        });
        ids.push(id);
    }
    (ids, uniq)
}

/// One proposed correspondence with its score.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProposedMatch {
    /// Source attribute.
    pub source: (TableId, AttrId),
    /// Target attribute.
    pub target: (TableId, AttrId),
    /// Combined similarity score.
    pub score: f64,
}

/// The combined schema matcher.
#[derive(Debug, Clone, Default)]
pub struct CombinedMatcher {
    config: MatcherConfig,
    prune: PrunePolicy,
}

impl CombinedMatcher {
    /// Create a matcher with the given configuration (pruning follows
    /// [`PrunePolicy::FromEnv`]).
    pub fn new(config: MatcherConfig) -> Self {
        CombinedMatcher {
            config,
            prune: PrunePolicy::default(),
        }
    }

    /// Pin the pruning policy, overriding [`MATCH_PRUNE_ENV_VAR`].
    pub fn with_prune(mut self, prune: PrunePolicy) -> Self {
        self.prune = prune;
        self
    }

    /// Score every source×target attribute pair and keep stable 1:1
    /// matches above the threshold (greedy on descending score, each
    /// attribute used at most once per direction).
    pub fn propose_attribute_matches(
        &self,
        source: &Database,
        target: &Database,
    ) -> Vec<ProposedMatch> {
        self.propose_attribute_matches_with(
            source,
            target,
            &ProfileCache::new(),
            ExecutionMode::from_env(),
        )
    }

    /// Like [`propose_attribute_matches`](Self::propose_attribute_matches)
    /// with an explicit profile cache and execution mode. The pair grid is
    /// O(source attrs × target attrs) and each pair profiles both columns
    /// twice, so the cache collapses the profiling cost from quadratic to
    /// linear in the attribute count; the pairs score concurrently under
    /// `mode`. `cache` keys the source as `DbTag(0)` and the target as
    /// [`DbTag::TARGET`].
    pub fn propose_attribute_matches_with(
        &self,
        source: &Database,
        target: &Database,
        cache: &ProfileCache,
        mode: ExecutionMode,
    ) -> Vec<ProposedMatch> {
        self.propose_attribute_matches_stats(source, target, cache, mode)
            .0
    }

    /// Like [`propose_attribute_matches_with`](Self::propose_attribute_matches_with),
    /// additionally reporting how much of the pair grid was pruned.
    pub fn propose_attribute_matches_stats(
        &self,
        source: &Database,
        target: &Database,
        cache: &ProfileCache,
        mode: ExecutionMode,
    ) -> (Vec<ProposedMatch>, MatchStats) {
        self.propose_attribute_matches_stats_ctx(
            source,
            target,
            cache,
            mode,
            &RunContext::unbounded(),
        )
        .expect("unbounded context never cancels")
    }

    /// Like [`propose_attribute_matches_stats`](Self::propose_attribute_matches_stats),
    /// cancellable: each pair's instance scoring checks `run` before
    /// profiling (and the profile fills themselves tick checkpoints), so
    /// a cancelled run aborts mid-grid instead of scoring out the
    /// remaining pairs. Output is byte-identical when `run` never fires.
    pub fn propose_attribute_matches_stats_ctx(
        &self,
        source: &Database,
        target: &Database,
        cache: &ProfileCache,
        mode: ExecutionMode,
        run: &RunContext,
    ) -> Result<(Vec<ProposedMatch>, MatchStats), Cancelled> {
        // Table-context similarity per table pair, computed once — the
        // same pure function the per-pair formula uses, so hoisting it
        // cannot change any score.
        let table_sims: Vec<Vec<f64>> = source
            .schema
            .tables()
            .iter()
            .map(|s_table| {
                target
                    .schema
                    .tables()
                    .iter()
                    .map(|t_table| name_similarity(&s_table.name, &t_table.name))
                    .collect()
            })
            .collect();

        let pairs = if self.prune.enabled() {
            self.pruned_name_scores(source, target, &table_sims, mode)
        } else {
            let exhaustive: Vec<NameScoredPair> = source
                .schema
                .iter_attributes()
                .flat_map(|(st, sa, s_attr)| {
                    let table_sims = &table_sims;
                    target.schema.iter_attributes().map(move |(tt, ta, t_attr)| {
                        // Attribute name similarity, boosted by
                        // table-context similarity so `albums.name`
                        // prefers `records.title` over `tracks.title`.
                        let attr_sim = name_similarity(&s_attr.name, &t_attr.name);
                        let name_score = 0.8 * attr_sim + 0.2 * table_sims[st.0][tt.0];
                        ((st, sa), (tt, ta), name_score)
                    })
                })
                .collect();
            exhaustive
        };
        let pairs_total =
            source.schema.iter_attributes().count() * target.schema.iter_attributes().count();
        let stats = MatchStats {
            pairs_total,
            pairs_pruned: pairs_total - pairs.len(),
            pairs_scored: pairs.len(),
        };

        let mut scored: Vec<ProposedMatch> = parallel_map(mode, pairs, |(s, t, name_score)| {
            let score = if self.config.use_instances
                && !source.instance.table(s.0).is_empty()
                && !target.instance.table(t.0).is_empty()
            {
                run.check()?;
                let inst = instance_similarity_cached_ctx(
                    run,
                    source,
                    DbTag(0),
                    s,
                    target,
                    DbTag::TARGET,
                    t,
                    cache,
                )?;
                self.config.name_weight * name_score + (1.0 - self.config.name_weight) * inst
            } else {
                name_score
            };
            Ok(ProposedMatch {
                source: s,
                target: t,
                score,
            })
        })
        .into_iter()
        .collect::<Result<Vec<ProposedMatch>, Cancelled>>()?
        .into_iter()
        .filter(|m| m.score >= self.config.attr_threshold)
        .collect();
        // Greedy 1:1: best scores first; deterministic tie-break by ids.
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.source.cmp(&b.source))
                .then_with(|| a.target.cmp(&b.target))
        });
        let mut used_source = std::collections::HashSet::new();
        let mut used_target = std::collections::HashSet::new();
        let accepted = scored
            .into_iter()
            .filter(|m| {
                if used_source.contains(&m.source) || used_target.contains(&m.target) {
                    return false;
                }
                used_source.insert(m.source);
                used_target.insert(m.target);
                true
            })
            .collect();
        Ok((accepted, stats))
    }

    /// The pruning front end: exact name scores for every pair whose
    /// score *bound* can still reach `attr_threshold`, skipping the rest.
    ///
    /// Soundness: the [`NameIndex`] bound dominates the exact attribute
    /// similarity, the pair bound is assembled by the same monotone
    /// expression shapes as the real score (`0.8·attr + 0.2·table`, then
    /// `w·name + (1-w)·instance` with `instance ≤ 1`), and the
    /// comparison keeps [`BOUND_SLACK`] of headroom — so every dropped
    /// pair would have scored below the threshold and been filtered.
    fn pruned_name_scores(
        &self,
        source: &Database,
        target: &Database,
        table_sims: &[Vec<f64>],
        mode: ExecutionMode,
    ) -> Vec<NameScoredPair> {
        let s_attrs: Vec<((TableId, AttrId), &str)> = source
            .schema
            .iter_attributes()
            .map(|(st, sa, a)| ((st, sa), a.name.as_str()))
            .collect();
        let t_attrs: Vec<((TableId, AttrId), &str)> = target
            .schema
            .iter_attributes()
            .map(|(tt, ta, a)| ((tt, ta), a.name.as_str()))
            .collect();
        // Attribute names repeat heavily (`id`, `name`, …): bound and
        // score per *unique* name pair, then scatter.
        let (s_name_ids, s_uniq) = intern_names(&s_attrs);
        let (t_name_ids, t_uniq) = intern_names(&t_attrs);
        let index = NameIndex::build(&t_uniq);
        let bound_rows: Vec<Vec<f64>> =
            parallel_map_ref(mode, &s_uniq, |name| index.upper_bounds(name));

        let w = self.config.name_weight;
        let threshold = self.config.attr_threshold;
        let s_nonempty: Vec<bool> = (0..source.schema.table_count())
            .map(|t| !source.instance.table(TableId(t)).is_empty())
            .collect();
        let t_nonempty: Vec<bool> = (0..target.schema.table_count())
            .map(|t| !target.instance.table(TableId(t)).is_empty())
            .collect();

        let mut survivors: Vec<(usize, usize)> = Vec::new();
        let mut needed: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        for (si, ((st, _), _)) in s_attrs.iter().enumerate() {
            let bounds = &bound_rows[s_name_ids[si] as usize];
            for (ti, ((tt, _), _)) in t_attrs.iter().enumerate() {
                let attr_bound = bounds[t_name_ids[ti] as usize];
                let name_bound = 0.8 * attr_bound + 0.2 * table_sims[st.0][tt.0];
                let instances = self.config.use_instances && s_nonempty[st.0] && t_nonempty[tt.0];
                let score_bound = if instances {
                    // Instance similarity is at most 1.
                    w * name_bound + (1.0 - w)
                } else {
                    name_bound
                };
                if score_bound + BOUND_SLACK >= threshold {
                    survivors.push((si, ti));
                    needed.insert((s_name_ids[si], t_name_ids[ti]));
                }
            }
        }

        // Exact attribute-name similarity, once per surviving unique
        // name pair.
        let needed: Vec<(u32, u32)> = needed.into_iter().collect();
        let sims: std::collections::HashMap<(u32, u32), f64> =
            parallel_map(mode, needed, |(a, b)| {
                ((a, b), name_similarity(s_uniq[a as usize], t_uniq[b as usize]))
            })
            .into_iter()
            .collect();
        survivors
            .into_iter()
            .map(|(si, ti)| {
                let (s, _) = s_attrs[si];
                let (t, _) = t_attrs[ti];
                let attr_sim = sims[&(s_name_ids[si], t_name_ids[ti])];
                let name_score = 0.8 * attr_sim + 0.2 * table_sims[s.0 .0][t.0 .0];
                (s, t, name_score)
            })
            .collect()
    }

    /// Derive table correspondences from accepted attribute matches: a
    /// source table corresponds to the target table that won most of its
    /// attributes (ties by aggregate score).
    pub fn propose_table_matches(
        &self,
        source: &Database,
        target: &Database,
        attr_matches: &[ProposedMatch],
    ) -> Vec<(TableId, TableId, f64)> {
        use std::collections::HashMap;
        let mut votes: HashMap<(TableId, TableId), (usize, f64)> = HashMap::new();
        for m in attr_matches {
            let e = votes.entry((m.source.0, m.target.0)).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += m.score;
        }
        let mut out: Vec<(TableId, TableId, f64)> = Vec::new();
        for st in 0..source.schema.table_count() {
            let st = TableId(st);
            let mut best: Option<(TableId, f64)> = None;
            for tt in 0..target.schema.table_count() {
                let tt = TableId(tt);
                if let Some((n, s)) = votes.get(&(st, tt)) {
                    let arity = source.schema.table(st).arity().max(1);
                    let coverage = *n as f64 / arity as f64;
                    let score = 0.5 * coverage
                        + 0.3 * (s / *n as f64)
                        + 0.2 * name_similarity(
                            &source.schema.table(st).name,
                            &target.schema.table(tt).name,
                        );
                    if best.is_none_or(|(_, bs)| score > bs) {
                        best = Some((tt, score));
                    }
                }
            }
            if let Some((tt, score)) = best {
                if score >= self.config.table_threshold {
                    out.push((st, tt, score));
                }
            }
        }
        out
    }

    /// Run the full matcher and emit a [`CorrespondenceSet`] for a
    /// single-source scenario.
    pub fn match_databases(&self, source: &Database, target: &Database) -> CorrespondenceSet {
        let attr_matches = self.propose_attribute_matches(source, target);
        let table_matches = self.propose_table_matches(source, target, &attr_matches);
        let mut set = CorrespondenceSet::new();
        for (st, tt, _) in &table_matches {
            set.push(Correspondence::Table {
                source: SourceId(0),
                source_table: *st,
                target_table: *tt,
            });
        }
        for m in &attr_matches {
            set.push(Correspondence::Attribute {
                source: SourceId(0),
                source_attr: efes_relational::AttrRef {
                    table: m.source.0,
                    attr: m.source.1,
                },
                target_attr: efes_relational::AttrRef {
                    table: m.target.0,
                    attr: m.target.1,
                },
            });
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efes_relational::{DataType, DatabaseBuilder};

    fn source() -> Database {
        DatabaseBuilder::new("src")
            .table("albums", |t| {
                t.attr("id", DataType::Integer)
                    .attr("name", DataType::Text)
                    .attr("genre", DataType::Text)
            })
            .rows(
                "albums",
                vec![
                    vec![1.into(), "Second Helping".into(), "rock".into()],
                    vec![2.into(), "Recovery".into(), "rap".into()],
                ],
            )
            .build()
            .unwrap()
    }

    fn target() -> Database {
        DatabaseBuilder::new("tgt")
            .table("records", |t| {
                t.attr("id", DataType::Integer)
                    .attr("title", DataType::Text)
                    .attr("genre", DataType::Text)
            })
            .rows(
                "records",
                vec![
                    vec![7.into(), "Nevermind".into(), "rock".into()],
                    vec![8.into(), "Horses".into(), "rock".into()],
                ],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn matches_synonymous_attributes_one_to_one() {
        let m = CombinedMatcher::new(MatcherConfig::default());
        let matches = m.propose_attribute_matches(&source(), &target());
        // genre↔genre, id↔id, name↔title all expected.
        assert_eq!(matches.len(), 3);
        let mut seen_targets = std::collections::HashSet::new();
        for pm in &matches {
            assert!(seen_targets.insert(pm.target), "1:1 violated");
        }
        let name_title = matches.iter().find(|pm| {
            pm.source == (TableId(0), AttrId(1)) && pm.target == (TableId(0), AttrId(1))
        });
        assert!(name_title.is_some(), "{matches:?}");
    }

    #[test]
    fn table_correspondence_derived_from_attributes() {
        let m = CombinedMatcher::new(MatcherConfig::default());
        let s = source();
        let t = target();
        let attrs = m.propose_attribute_matches(&s, &t);
        let tables = m.propose_table_matches(&s, &t, &attrs);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].0, TableId(0));
        assert_eq!(tables[0].1, TableId(0));
    }

    #[test]
    fn emitted_correspondences_validate_in_scenario() {
        let m = CombinedMatcher::new(MatcherConfig::default());
        let s = source();
        let t = target();
        let set = m.match_databases(&s, &t);
        assert!(set.len() >= 4); // 1 table + 3 attributes
        let scenario = efes_relational::IntegrationScenario::single_source("auto", s, t, set);
        assert!(scenario.is_ok());
    }

    #[test]
    fn name_only_mode_works_on_empty_instances() {
        let cfg = MatcherConfig {
            use_instances: false,
            ..MatcherConfig::default()
        };
        let m = CombinedMatcher::new(cfg);
        let s = DatabaseBuilder::new("s")
            .table("albums", |t| t.attr("name", DataType::Text))
            .build()
            .unwrap();
        let t = DatabaseBuilder::new("t")
            .table("records", |t| t.attr("title", DataType::Text))
            .build()
            .unwrap();
        let matches = m.propose_attribute_matches(&s, &t);
        assert_eq!(matches.len(), 1);
    }
}
