//! The combined matcher: weighted name + instance similarity, greedy 1:1
//! assignment, and emission of correspondence sets consumable by the EFES
//! pipeline.

use crate::instance::instance_similarity_cached;
use crate::name::name_similarity;
use efes_exec::{parallel_map, ExecutionMode};
use efes_profiling::{DbTag, ProfileCache};
use efes_relational::schema::{AttrId, TableId};
use efes_relational::{
    Correspondence, CorrespondenceSet, Database, SourceId,
};
use serde::{Deserialize, Serialize};

/// Matcher configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatcherConfig {
    /// Weight of name similarity (instance similarity gets `1 - w`).
    pub name_weight: f64,
    /// Minimum combined score for a proposed attribute correspondence.
    pub attr_threshold: f64,
    /// Minimum aggregated score for a proposed table correspondence.
    pub table_threshold: f64,
    /// Use instance data at all (pure name matching when false — the
    /// right choice for empty targets).
    pub use_instances: bool,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            name_weight: 0.6,
            attr_threshold: 0.55,
            table_threshold: 0.45,
            use_instances: true,
        }
    }
}

/// One proposed correspondence with its score.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProposedMatch {
    /// Source attribute.
    pub source: (TableId, AttrId),
    /// Target attribute.
    pub target: (TableId, AttrId),
    /// Combined similarity score.
    pub score: f64,
}

/// The combined schema matcher.
#[derive(Debug, Clone, Default)]
pub struct CombinedMatcher {
    config: MatcherConfig,
}

impl CombinedMatcher {
    /// Create a matcher with the given configuration.
    pub fn new(config: MatcherConfig) -> Self {
        CombinedMatcher { config }
    }

    /// Score every source×target attribute pair and keep stable 1:1
    /// matches above the threshold (greedy on descending score, each
    /// attribute used at most once per direction).
    pub fn propose_attribute_matches(
        &self,
        source: &Database,
        target: &Database,
    ) -> Vec<ProposedMatch> {
        self.propose_attribute_matches_with(
            source,
            target,
            &ProfileCache::new(),
            ExecutionMode::from_env(),
        )
    }

    /// Like [`propose_attribute_matches`](Self::propose_attribute_matches)
    /// with an explicit profile cache and execution mode. The pair grid is
    /// O(source attrs × target attrs) and each pair profiles both columns
    /// twice, so the cache collapses the profiling cost from quadratic to
    /// linear in the attribute count; the pairs score concurrently under
    /// `mode`. `cache` keys the source as `DbTag(0)` and the target as
    /// [`DbTag::TARGET`].
    pub fn propose_attribute_matches_with(
        &self,
        source: &Database,
        target: &Database,
        cache: &ProfileCache,
        mode: ExecutionMode,
    ) -> Vec<ProposedMatch> {
        // (source attr, target attr, name score) per candidate pair.
        type NameScoredPair = ((TableId, AttrId), (TableId, AttrId), f64);
        let pairs: Vec<NameScoredPair> = source
            .schema
            .iter_attributes()
            .flat_map(|(st, sa, s_attr)| {
                target.schema.iter_attributes().map(move |(tt, ta, t_attr)| {
                    let s_table = &source.schema.table(st).name;
                    let t_table = &target.schema.table(tt).name;
                    // Attribute name similarity, boosted by table-context
                    // similarity so `albums.name` prefers `records.title`
                    // over `tracks.title`.
                    let attr_sim = name_similarity(&s_attr.name, &t_attr.name);
                    let table_sim = name_similarity(s_table, t_table);
                    let name_score = 0.8 * attr_sim + 0.2 * table_sim;
                    ((st, sa), (tt, ta), name_score)
                })
            })
            .collect();
        let mut scored: Vec<ProposedMatch> = parallel_map(mode, pairs, |(s, t, name_score)| {
            let score = if self.config.use_instances
                && !source.instance.table(s.0).is_empty()
                && !target.instance.table(t.0).is_empty()
            {
                let inst =
                    instance_similarity_cached(source, DbTag(0), s, target, DbTag::TARGET, t, cache);
                self.config.name_weight * name_score + (1.0 - self.config.name_weight) * inst
            } else {
                name_score
            };
            ProposedMatch {
                source: s,
                target: t,
                score,
            }
        })
        .into_iter()
        .filter(|m| m.score >= self.config.attr_threshold)
        .collect();
        // Greedy 1:1: best scores first; deterministic tie-break by ids.
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.source.cmp(&b.source))
                .then_with(|| a.target.cmp(&b.target))
        });
        let mut used_source = std::collections::HashSet::new();
        let mut used_target = std::collections::HashSet::new();
        scored
            .into_iter()
            .filter(|m| {
                if used_source.contains(&m.source) || used_target.contains(&m.target) {
                    return false;
                }
                used_source.insert(m.source);
                used_target.insert(m.target);
                true
            })
            .collect()
    }

    /// Derive table correspondences from accepted attribute matches: a
    /// source table corresponds to the target table that won most of its
    /// attributes (ties by aggregate score).
    pub fn propose_table_matches(
        &self,
        source: &Database,
        target: &Database,
        attr_matches: &[ProposedMatch],
    ) -> Vec<(TableId, TableId, f64)> {
        use std::collections::HashMap;
        let mut votes: HashMap<(TableId, TableId), (usize, f64)> = HashMap::new();
        for m in attr_matches {
            let e = votes.entry((m.source.0, m.target.0)).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += m.score;
        }
        let mut out: Vec<(TableId, TableId, f64)> = Vec::new();
        for st in 0..source.schema.table_count() {
            let st = TableId(st);
            let mut best: Option<(TableId, f64)> = None;
            for tt in 0..target.schema.table_count() {
                let tt = TableId(tt);
                if let Some((n, s)) = votes.get(&(st, tt)) {
                    let arity = source.schema.table(st).arity().max(1);
                    let coverage = *n as f64 / arity as f64;
                    let score = 0.5 * coverage
                        + 0.3 * (s / *n as f64)
                        + 0.2 * name_similarity(
                            &source.schema.table(st).name,
                            &target.schema.table(tt).name,
                        );
                    if best.is_none_or(|(_, bs)| score > bs) {
                        best = Some((tt, score));
                    }
                }
            }
            if let Some((tt, score)) = best {
                if score >= self.config.table_threshold {
                    out.push((st, tt, score));
                }
            }
        }
        out
    }

    /// Run the full matcher and emit a [`CorrespondenceSet`] for a
    /// single-source scenario.
    pub fn match_databases(&self, source: &Database, target: &Database) -> CorrespondenceSet {
        let attr_matches = self.propose_attribute_matches(source, target);
        let table_matches = self.propose_table_matches(source, target, &attr_matches);
        let mut set = CorrespondenceSet::new();
        for (st, tt, _) in &table_matches {
            set.push(Correspondence::Table {
                source: SourceId(0),
                source_table: *st,
                target_table: *tt,
            });
        }
        for m in &attr_matches {
            set.push(Correspondence::Attribute {
                source: SourceId(0),
                source_attr: efes_relational::AttrRef {
                    table: m.source.0,
                    attr: m.source.1,
                },
                target_attr: efes_relational::AttrRef {
                    table: m.target.0,
                    attr: m.target.1,
                },
            });
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efes_relational::{DataType, DatabaseBuilder};

    fn source() -> Database {
        DatabaseBuilder::new("src")
            .table("albums", |t| {
                t.attr("id", DataType::Integer)
                    .attr("name", DataType::Text)
                    .attr("genre", DataType::Text)
            })
            .rows(
                "albums",
                vec![
                    vec![1.into(), "Second Helping".into(), "rock".into()],
                    vec![2.into(), "Recovery".into(), "rap".into()],
                ],
            )
            .build()
            .unwrap()
    }

    fn target() -> Database {
        DatabaseBuilder::new("tgt")
            .table("records", |t| {
                t.attr("id", DataType::Integer)
                    .attr("title", DataType::Text)
                    .attr("genre", DataType::Text)
            })
            .rows(
                "records",
                vec![
                    vec![7.into(), "Nevermind".into(), "rock".into()],
                    vec![8.into(), "Horses".into(), "rock".into()],
                ],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn matches_synonymous_attributes_one_to_one() {
        let m = CombinedMatcher::new(MatcherConfig::default());
        let matches = m.propose_attribute_matches(&source(), &target());
        // genre↔genre, id↔id, name↔title all expected.
        assert_eq!(matches.len(), 3);
        let mut seen_targets = std::collections::HashSet::new();
        for pm in &matches {
            assert!(seen_targets.insert(pm.target), "1:1 violated");
        }
        let name_title = matches.iter().find(|pm| {
            pm.source == (TableId(0), AttrId(1)) && pm.target == (TableId(0), AttrId(1))
        });
        assert!(name_title.is_some(), "{matches:?}");
    }

    #[test]
    fn table_correspondence_derived_from_attributes() {
        let m = CombinedMatcher::new(MatcherConfig::default());
        let s = source();
        let t = target();
        let attrs = m.propose_attribute_matches(&s, &t);
        let tables = m.propose_table_matches(&s, &t, &attrs);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].0, TableId(0));
        assert_eq!(tables[0].1, TableId(0));
    }

    #[test]
    fn emitted_correspondences_validate_in_scenario() {
        let m = CombinedMatcher::new(MatcherConfig::default());
        let s = source();
        let t = target();
        let set = m.match_databases(&s, &t);
        assert!(set.len() >= 4); // 1 table + 3 attributes
        let scenario = efes_relational::IntegrationScenario::single_source("auto", s, t, set);
        assert!(scenario.is_ok());
    }

    #[test]
    fn name_only_mode_works_on_empty_instances() {
        let cfg = MatcherConfig {
            use_instances: false,
            ..MatcherConfig::default()
        };
        let m = CombinedMatcher::new(cfg);
        let s = DatabaseBuilder::new("s")
            .table("albums", |t| t.attr("name", DataType::Text))
            .build()
            .unwrap();
        let t = DatabaseBuilder::new("t")
            .table("records", |t| t.attr("title", DataType::Text))
            .build()
            .unwrap();
        let matches = m.propose_attribute_matches(&s, &t);
        assert_eq!(matches.len(), 1);
    }
}
