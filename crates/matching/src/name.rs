//! Name-based matching of schema elements.

use crate::similarity::{jaro_winkler, levenshtein_similarity, token_similarity, trigram_jaccard};

/// A small thesaurus of synonym pairs common in the paper's domains.
/// Matchers in practice carry such dictionaries; this one covers the
/// bibliographic and discographic vocabulary of the case studies.
const SYNONYMS: &[(&str, &str)] = &[
    ("title", "name"),
    ("title", "label"),
    ("record", "album"),
    ("track", "song"),
    ("duration", "length"),
    ("artist", "performer"),
    ("author", "writer"),
    ("paper", "article"),
    ("paper", "publication"),
    ("venue", "conference"),
    ("year", "date"),
    ("pages", "pp"),
];

/// Similarity of two identifiers in `[0,1]`: the maximum of the string
/// measures, with a synonym-table boost.
pub fn name_similarity(a: &str, b: &str) -> f64 {
    let la = a.to_lowercase();
    let lb = b.to_lowercase();
    if la == lb {
        return 1.0;
    }
    let base = jaro_winkler(&la, &lb)
        .max(trigram_jaccard(&la, &lb))
        .max(token_similarity(&la, &lb))
        .max(levenshtein_similarity(&la, &lb));
    let synonym = SYNONYMS.iter().any(|(x, y)| {
        (la.contains(x) && lb.contains(y)) || (la.contains(y) && lb.contains(x))
    });
    if synonym {
        (base + 0.85).min(0.97) // strong signal, but below exact equality
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_names_score_one() {
        assert_eq!(name_similarity("artist", "artist"), 1.0);
        assert_eq!(name_similarity("Artist", "artist"), 1.0);
    }

    #[test]
    fn synonyms_score_high_but_below_exact() {
        let s = name_similarity("duration", "length");
        assert!((0.85..1.0).contains(&s), "{s}");
        let t = name_similarity("albums", "records");
        assert!((0.85..1.0).contains(&t), "{t}");
    }

    #[test]
    fn related_names_beat_unrelated() {
        assert!(name_similarity("artist_list", "artists") > name_similarity("artist_list", "genre"));
    }

    #[test]
    fn unrelated_names_score_low() {
        assert!(name_similarity("genre", "duration") < 0.6);
    }
}
