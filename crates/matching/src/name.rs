//! Name-based matching of schema elements, plus the [`NameIndex`]
//! candidate filter that bounds [`name_similarity`] from above without
//! running any of the expensive string kernels.

use crate::similarity::{
    jaro_winkler, levenshtein_similarity, token_similarity, tokenize, trigram_jaccard, trigram_set,
};
use std::collections::HashMap;

/// A small thesaurus of synonym pairs common in the paper's domains.
/// Matchers in practice carry such dictionaries; this one covers the
/// bibliographic and discographic vocabulary of the case studies.
const SYNONYMS: &[(&str, &str)] = &[
    ("title", "name"),
    ("title", "label"),
    ("record", "album"),
    ("track", "song"),
    ("duration", "length"),
    ("artist", "performer"),
    ("author", "writer"),
    ("paper", "article"),
    ("paper", "publication"),
    ("venue", "conference"),
    ("year", "date"),
    ("pages", "pp"),
];

/// Similarity of two identifiers in `[0,1]`: the maximum of the string
/// measures, with a synonym-table boost.
pub fn name_similarity(a: &str, b: &str) -> f64 {
    let la = a.to_lowercase();
    let lb = b.to_lowercase();
    if la == lb {
        return 1.0;
    }
    let base = jaro_winkler(&la, &lb)
        .max(trigram_jaccard(&la, &lb))
        .max(token_similarity(&la, &lb))
        .max(levenshtein_similarity(&la, &lb));
    let synonym = SYNONYMS.iter().any(|(x, y)| {
        (la.contains(x) && lb.contains(y)) || (la.contains(y) && lb.contains(x))
    });
    if synonym {
        (base + 0.85).min(0.97) // strong signal, but below exact equality
    } else {
        base
    }
}

/// Absolute slack applied when comparing an upper bound against a
/// threshold. The bounds below dominate the true similarities in real
/// arithmetic; rounding in the floating-point evaluation can disturb
/// either side by a few ulps (~1e-16), which this slack swamps by seven
/// orders of magnitude without keeping any meaningful candidate alive.
pub const BOUND_SLACK: f64 = 1e-9;

/// Per-token features: enough to bound the Jaro-Winkler fuzzy-token test
/// without running it.
struct TokenFeatures {
    text: String,
    len: u32,
    counts: Vec<(char, u32)>,
    prefix: [char; 4],
    prefix_len: u8,
}

/// Precomputed features of one (lowercased) identifier.
struct NameFeatures {
    lower: String,
    len: u32,
    counts: Vec<(char, u32)>,
    prefix: [char; 4],
    prefix_len: u8,
    grams: Vec<[char; 3]>,
    tokens: Vec<TokenFeatures>,
    /// Bit `i` set when the name contains `SYNONYMS[i].0` / `.1`.
    syn_left: u16,
    syn_right: u16,
}

/// Sorted per-character counts of `s`.
fn char_counts(s: &str) -> Vec<(char, u32)> {
    let mut chars: Vec<char> = s.chars().collect();
    chars.sort_unstable();
    let mut out: Vec<(char, u32)> = Vec::new();
    for c in chars {
        match out.last_mut() {
            Some((last, n)) if *last == c => *n += 1,
            _ => out.push((c, 1)),
        }
    }
    out
}

/// `Σ_ch min(count_a, count_b)` over two sorted count lists — an upper
/// bound on the number of Jaro matches and on `max_len - levenshtein`.
fn common_chars(a: &[(char, u32)], b: &[(char, u32)]) -> u32 {
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += a[i].1.min(b[j].1);
                i += 1;
                j += 1;
            }
        }
    }
    c
}

fn prefix4(s: &str) -> ([char; 4], u8) {
    let mut prefix = ['\0'; 4];
    let mut n = 0u8;
    for c in s.chars().take(4) {
        prefix[n as usize] = c;
        n += 1;
    }
    (prefix, n)
}

/// The exact Jaro-Winkler shared-prefix length between two names whose
/// first four characters are stored.
fn common_prefix(a: (&[char; 4], u8), b: (&[char; 4], u8)) -> u32 {
    let n = a.1.min(b.1) as usize;
    let mut p = 0u32;
    for i in 0..n {
        if a.0[i] == b.0[i] {
            p += 1;
        } else {
            break;
        }
    }
    p
}

/// Upper bound on `jaro_winkler` from the common-character count `c`,
/// the two char lengths, and the exact shared-prefix length `p`: the
/// Jaro match count `m` is at most `c` and the transposition term is at
/// most 1, so `j ≤ (c/la + c/lb + 1)/3`, and Jaro-Winkler is increasing
/// in `j` (the prefix boost coefficient `1 - 0.1·p` stays positive).
fn jaro_winkler_upper(c: u32, la: u32, lb: u32, p: u32) -> f64 {
    if la == 0 || lb == 0 {
        return if la == lb { 1.0 } else { 0.0 };
    }
    if c == 0 {
        // No shared characters: no Jaro matches and no shared prefix.
        return 0.0;
    }
    let c = c as f64;
    let j = (c / la as f64 + c / lb as f64 + 1.0) / 3.0;
    (j + p as f64 * 0.1 * (1.0 - j)).min(1.0)
}

fn token_features(text: String) -> TokenFeatures {
    let counts = char_counts(&text);
    let len = text.chars().count() as u32;
    let (prefix, prefix_len) = prefix4(&text);
    TokenFeatures {
        text,
        len,
        counts,
        prefix,
        prefix_len,
    }
}

impl NameFeatures {
    fn of(name: &str) -> NameFeatures {
        let lower = name.to_lowercase();
        let counts = char_counts(&lower);
        let len = lower.chars().count() as u32;
        let (prefix, prefix_len) = prefix4(&lower);
        let grams: Vec<[char; 3]> = trigram_set(&lower).into_iter().collect();
        let tokens = tokenize(&lower).into_iter().map(token_features).collect();
        let (mut syn_left, mut syn_right) = (0u16, 0u16);
        for (i, (x, y)) in SYNONYMS.iter().enumerate() {
            if lower.contains(x) {
                syn_left |= 1 << i;
            }
            if lower.contains(y) {
                syn_right |= 1 << i;
            }
        }
        NameFeatures {
            lower,
            len,
            counts,
            prefix,
            prefix_len,
            grams,
            tokens,
            syn_left,
            syn_right,
        }
    }
}

/// Upper bound on `token_similarity`: a source token can only score a
/// hit against a target token it equals or whose Jaro-Winkler *bound*
/// reaches the 0.9 fuzzy-match threshold, and the total hit count never
/// exceeds either token count. Jaccard `h/(na+nb-h)` is increasing in
/// `h`.
fn token_upper(a: &NameFeatures, b: &NameFeatures) -> f64 {
    let (na, nb) = (a.tokens.len(), b.tokens.len());
    if na == 0 && nb == 0 {
        return 1.0;
    }
    if na == 0 || nb == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    for x in &a.tokens {
        let feasible = b.tokens.iter().any(|y| {
            x.text == y.text || {
                let c = common_chars(&x.counts, &y.counts);
                let p = common_prefix((&x.prefix, x.prefix_len), (&y.prefix, y.prefix_len));
                jaro_winkler_upper(c, x.len, y.len, p) + BOUND_SLACK >= 0.9
            }
        });
        if feasible {
            hits += 1;
        }
    }
    let hits = hits.min(nb);
    hits as f64 / (na + nb - hits) as f64
}

/// Upper bound on [`name_similarity`] between two feature sets, given
/// the exact trigram intersection count. Every branch mirrors the exact
/// function through monotone steps: the trigram term is computed
/// *exactly* (same integer counts, same division), the Jaro-Winkler,
/// Levenshtein and token terms are replaced by dominating bounds, and
/// the synonym boost — decided exactly via the containment bitmasks —
/// is monotone in the base score.
fn upper_bound(a: &NameFeatures, b: &NameFeatures, gram_inter: u32) -> f64 {
    if a.lower == b.lower {
        return 1.0;
    }
    let trigram = {
        let (ga, gb) = (a.grams.len() as u32, b.grams.len() as u32);
        if ga == 0 && gb == 0 {
            1.0
        } else {
            gram_inter as f64 / (ga + gb - gram_inter) as f64
        }
    };
    let c = common_chars(&a.counts, &b.counts);
    let p = common_prefix((&a.prefix, a.prefix_len), (&b.prefix, b.prefix_len));
    let jw = jaro_winkler_upper(c, a.len, b.len, p);
    let lev = {
        let max = a.len.max(b.len);
        // dist ≥ max_len - common_chars, so sim = 1 - dist/max ≤ c/max.
        if max == 0 {
            1.0
        } else {
            c as f64 / max as f64
        }
    };
    let base = jw.max(trigram).max(token_upper(a, b)).max(lev);
    let synonym = (a.syn_left & b.syn_right) | (a.syn_right & b.syn_left) != 0;
    if synonym {
        (base + 0.85).min(0.97)
    } else {
        base
    }
}

/// A trigram-inverted index over a fixed set of (target) identifiers
/// that yields, per query, a *sound* upper bound on
/// [`name_similarity`]`(query, name)` for every indexed name — pairs
/// whose bound cannot clear a threshold can skip the exact kernels
/// entirely. Bounds satisfy
/// `upper_bounds(q)[i] + BOUND_SLACK ≥ name_similarity(q, names[i])`
/// (property-tested in `tests/proptests.rs`).
pub struct NameIndex {
    names: Vec<NameFeatures>,
    postings: HashMap<[char; 3], Vec<u32>>,
}

impl NameIndex {
    /// Index the given names (typically the unique attribute names of
    /// the match target).
    pub fn build<S: AsRef<str>>(names: &[S]) -> NameIndex {
        let names: Vec<NameFeatures> = names.iter().map(|s| NameFeatures::of(s.as_ref())).collect();
        let mut postings: HashMap<[char; 3], Vec<u32>> = HashMap::new();
        for (i, f) in names.iter().enumerate() {
            for g in &f.grams {
                postings.entry(*g).or_default().push(i as u32);
            }
        }
        NameIndex { names, postings }
    }

    /// Number of indexed names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Upper bounds on `name_similarity(query, name)` for every indexed
    /// name, in index order. One pass over the postings recovers the
    /// exact trigram-intersection count per name; everything else reads
    /// precomputed features.
    pub fn upper_bounds(&self, query: &str) -> Vec<f64> {
        let q = NameFeatures::of(query);
        let mut inter = vec![0u32; self.names.len()];
        for g in &q.grams {
            if let Some(ids) = self.postings.get(g) {
                for &id in ids {
                    inter[id as usize] += 1;
                }
            }
        }
        self.names
            .iter()
            .zip(&inter)
            .map(|(t, &gi)| upper_bound(&q, t, gi))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_names_score_one() {
        assert_eq!(name_similarity("artist", "artist"), 1.0);
        assert_eq!(name_similarity("Artist", "artist"), 1.0);
    }

    #[test]
    fn synonyms_score_high_but_below_exact() {
        let s = name_similarity("duration", "length");
        assert!((0.85..1.0).contains(&s), "{s}");
        let t = name_similarity("albums", "records");
        assert!((0.85..1.0).contains(&t), "{t}");
    }

    #[test]
    fn related_names_beat_unrelated() {
        assert!(name_similarity("artist_list", "artists") > name_similarity("artist_list", "genre"));
    }

    #[test]
    fn unrelated_names_score_low() {
        assert!(name_similarity("genre", "duration") < 0.6);
    }

    #[test]
    fn index_bounds_dominate_exact_similarity() {
        let targets = [
            "title", "name", "record_id", "trackLength", "artist", "pp", "x", "", "_",
            "durée", "release year",
        ];
        let index = NameIndex::build(&targets);
        assert_eq!(index.len(), targets.len());
        for query in [
            "Title", "album_name", "length", "id", "performer", "pages", "y", "", "__", "duree",
            "year",
        ] {
            let ubs = index.upper_bounds(query);
            for (t, ub) in targets.iter().zip(&ubs) {
                let exact = name_similarity(query, t);
                assert!(
                    ub + BOUND_SLACK >= exact,
                    "bound {ub} < exact {exact} for {query:?} vs {t:?}"
                );
            }
        }
    }

    #[test]
    fn index_bounds_are_tight_enough_to_prune() {
        // The point of the index: clearly unrelated names must bound
        // below the default 0.55 attribute threshold.
        let index = NameIndex::build(&["duration", "genre", "isbn"]);
        for ub in index.upper_bounds("qwfp") {
            // Disjoint character sets: every measure bounds to 0.
            assert_eq!(ub, 0.0);
        }
        let ubs = index.upper_bounds("publisher_city");
        assert!(ubs[1] < 0.55, "{ubs:?}"); // vs genre
        // ...while true matches keep a bound at/above their exact score.
        let ubs = index.upper_bounds("duration");
        assert_eq!(ubs[0], 1.0);
    }
}
