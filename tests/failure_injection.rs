//! Failure-injection tests: the pipeline degrades loudly, not wrongly —
//! malformed inputs are rejected at construction, planner pathologies
//! surface as typed errors, and misconfiguration is observable.

use efes::framework::{EstimationModule, ModuleError, ModuleReport};
use efes::modules::StructureModule;
use efes::prelude::*;
use efes::settings::Quality;
use efes_csg::planner::{PlannerOptions, StructureTaskKind};
use efes_csg::violations::ConflictKind;
use efes_relational::{
    csv, CorrespondenceBuilder, DataType, DatabaseBuilder, IntegrationScenario,
};

#[test]
fn malformed_csv_is_rejected_with_line_numbers() {
    let err = csv::load_table("x", "t", "a,b\n1\n").unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");
    let err = csv::load_table("x", "t", "").unwrap_err();
    assert!(err.to_string().contains("empty"), "{err}");
    let err = csv::parse("a\n\"unterminated\n").unwrap_err();
    assert!(err.to_string().contains("unterminated"), "{err}");
}

#[test]
fn type_violations_fail_at_insertion() {
    let mut db = DatabaseBuilder::new("x")
        .table("t", |t| t.attr("n", DataType::Integer))
        .build()
        .unwrap();
    let err = db.insert_by_name("t", vec!["not a number".into()]).unwrap_err();
    assert!(err.to_string().contains("expected integer"), "{err}");
    let err = db.insert_by_name("t", vec![]).unwrap_err();
    assert!(err.to_string().contains("0 values"), "{err}");
    let err = db.insert_by_name("nope", vec![1.into()]).unwrap_err();
    assert!(err.to_string().contains("unknown table"), "{err}");
}

#[test]
fn dangling_correspondences_fail_scenario_construction() {
    use efes_relational::{Correspondence, CorrespondenceSet, SourceId, TableId};
    let source = DatabaseBuilder::new("s")
        .table("a", |t| t.attr("x", DataType::Text))
        .build()
        .unwrap();
    let target = DatabaseBuilder::new("t")
        .table("b", |t| t.attr("y", DataType::Text))
        .build()
        .unwrap();
    let mut corrs = CorrespondenceSet::new();
    corrs.push(Correspondence::Table {
        source: SourceId(5), // no such source
        source_table: TableId(0),
        target_table: TableId(0),
    });
    let err = IntegrationScenario::single_source("bad", source, target, corrs).unwrap_err();
    assert!(err.to_string().contains("unknown source"), "{err}");
}

#[test]
fn contradictory_repair_adaptation_reports_a_cleaning_loop() {
    // A target with a UNIQUE + NOT NULL attribute fed by an empty-ish
    // source; adapting the unique repair to "set values to null" under
    // pessimistic added values contradicts "add missing values" — the
    // module must surface the planner's loop error, not hang or emit a
    // bogus plan.
    let mut source = DatabaseBuilder::new("s")
        .table("users", |t| t.attr("email", DataType::Text))
        .build()
        .unwrap();
    for i in 0..10 {
        source
            .insert_by_name(
                "users",
                vec![if i % 2 == 0 {
                    efes_relational::Value::Null
                } else {
                    format!("user{i}@example.org").into()
                }],
            )
            .unwrap();
    }
    let target = DatabaseBuilder::new("t")
        .table("users", |t| {
            t.attr("email", DataType::Text)
                .not_null("email")
                .unique(&["email"])
        })
        .build()
        .unwrap();
    let corrs = CorrespondenceBuilder::new(&source, &target)
        .table("users", "users")
        .unwrap()
        .attr("users", "email", "users", "email")
        .unwrap()
        .finish();
    let scenario = IntegrationScenario::single_source("loop", source, target, corrs).unwrap();

    let module = StructureModule {
        planner_options: PlannerOptions {
            pessimistic_added_values: true,
            overrides: vec![(ConflictKind::UniqueViolated, StructureTaskKind::SetValuesToNull)],
            ..PlannerOptions::default()
        },
    };
    let report = module.assess(&scenario).unwrap();
    let err = module
        .plan(
            &scenario,
            &report,
            &EstimationConfig::for_quality(Quality::HighQuality),
        )
        .unwrap_err();
    assert!(
        err.to_string().contains("infinite cleaning loop"),
        "{err}"
    );
}

/// A module whose detector always fails: the estimator must propagate
/// the error instead of producing a partial estimate.
struct BrokenModule;

impl EstimationModule for BrokenModule {
    fn name(&self) -> &str {
        "broken"
    }
    fn assess(
        &self,
        _scenario: &efes_relational::IntegrationScenario,
    ) -> Result<ModuleReport, ModuleError> {
        Err(ModuleError::InvalidScenario("injected failure".into()))
    }
    fn plan(
        &self,
        _scenario: &efes_relational::IntegrationScenario,
        _report: &ModuleReport,
        _config: &EstimationConfig,
    ) -> Result<Vec<Task>, ModuleError> {
        unreachable!("assess failed first")
    }
}

#[test]
fn module_errors_propagate_out_of_the_estimator() {
    let source = DatabaseBuilder::new("s")
        .table("t", |t| t.attr("x", DataType::Text))
        .build()
        .unwrap();
    let target = source.clone();
    let corrs = CorrespondenceBuilder::new(&source, &target)
        .table("t", "t")
        .unwrap()
        .finish();
    let scenario = IntegrationScenario::single_source("x", source, target, corrs).unwrap();
    let mut estimator = Estimator::with_default_modules(EstimationConfig::default());
    estimator.register(Box::new(BrokenModule));
    let err = estimator.estimate(&scenario).unwrap_err();
    assert!(err.to_string().contains("injected failure"), "{err}");
}

#[test]
fn unpriced_custom_tasks_are_visible_as_zero_minutes() {
    // Forgetting to register an effort function is observable: the task
    // appears in the estimate with 0 minutes rather than vanishing.
    let model = EffortModel::table9();
    let task = Task::new(
        TaskType::Custom("unpriced".into()),
        Quality::HighQuality,
        TaskParams::repeated(100),
        "loc",
        "custom",
    );
    assert_eq!(model.minutes_for(&task, &Default::default()), 0.0);
}
