//! Cross-crate integration tests: the substrates compose — CSV loading →
//! constraint discovery → schema matching → estimation, with no manual
//! schema or correspondence input at all (the fully-automatic pipeline
//! the paper's §7 sketches).

use efes::prelude::*;
use efes_matching::{CombinedMatcher, MatcherConfig};
use efes_profiling::{discover_constraints, DiscoveryOptions};
use efes_relational::{csv, IntegrationScenario};

const SOURCE_CSV: &str = "\
album,name,length
1,Sweet Home Alabama,283000
1,I Need You,415000
1,Don't Ask Me No Questions,206000
2,Hands Up,215900
2,Labor Day,238100
2,Anxiety,218200
3,Lose Yourself,326000
3,Without Me,290000
";

const TARGET_CSV: &str = "\
record,title,duration
10,Smells Like Teen Spirit,5:01
10,Come as You Are,3:39
10,Lithium,4:17
11,Gloria,5:57
11,Redondo Beach,3:26
11,Birdland,9:15
";

#[test]
fn csv_to_estimate_without_manual_input() {
    // 1. Load raw dumps (paper §3.1: "for some sources (e.g., data
    //    dumps), a schema definition may be completely missing").
    let mut source = csv::load_table("src-dump", "songs", SOURCE_CSV).unwrap();
    let mut target = csv::load_table("tgt-dump", "tracks", TARGET_CSV).unwrap();

    // 2. Reverse-engineer constraints from the data.
    let opts = DiscoveryOptions::default();
    let d_src = discover_constraints(&source, &opts);
    d_src.merge_into(&mut source.constraints);
    let d_tgt = discover_constraints(&target, &opts);
    d_tgt.merge_into(&mut target.constraints);
    assert!(!source.constraints.is_empty(), "discovery found constraints");

    // 3. Match the schemas automatically.
    let matcher = CombinedMatcher::new(MatcherConfig::default());
    let correspondences = matcher.match_databases(&source, &target);
    assert!(
        correspondences.len() >= 3,
        "matcher should find the table and ≥2 attribute correspondences: {correspondences:?}"
    );

    // 4. Estimate.
    let scenario =
        IntegrationScenario::single_source("csv-auto", source, target, correspondences).unwrap();
    let estimator = Estimator::with_default_modules(EstimationConfig::default());
    let estimate = estimator.estimate(&scenario).unwrap();
    assert!(estimate.total_minutes() > 0.0);

    // The millisecond-vs-m:ss mismatch must surface even on this fully
    // automatic path.
    let has_value_finding = estimate
        .reports
        .iter()
        .flat_map(|r| r.findings.iter())
        .any(|f| f.kind == "value-heterogeneity" && f.location.contains("length"));
    assert!(has_value_finding, "{:#?}", estimate.reports);
}

#[test]
fn discovered_constraints_feed_the_csg() {
    // Constraint discovery output is consumed by the CSG conversion: a
    // discovered unique column becomes a `1` value→tuple prescription.
    let mut db = csv::load_table("d", "t", "id,name\n1,a\n2,b\n3,c\n4,d\n").unwrap();
    let found = discover_constraints(&db, &DiscoveryOptions::default());
    found.merge_into(&mut db.constraints);
    let conv = efes_csg::database_to_csg(&db);
    let (tid, aid) = db.schema.resolve("t", "id").unwrap();
    let rel = conv.attr_rel(tid, aid);
    assert_eq!(
        conv.csg
            .card_of(efes_csg::RelRef::bwd(rel))
            .to_string(),
        "1",
        "discovered uniqueness must reach the CSG"
    );
}

#[test]
fn profiling_statistics_agree_with_matcher_decisions() {
    // The instance matcher and the value-fit detector share the §5.1
    // machinery: a pair the matcher scores low must also fail the 0.9
    // fit threshold, keeping the substrates mutually consistent.
    use efes_profiling::AttributeProfile;
    use efes_relational::DataType;

    let source = csv::load_table("s", "songs", SOURCE_CSV).unwrap();
    let target = csv::load_table("t", "tracks", TARGET_CSV).unwrap();
    let (st, sa) = source.schema.resolve("songs", "length").unwrap();
    let (tt, ta) = target.schema.resolve("tracks", "duration").unwrap();

    let p_src = AttributeProfile::of_attribute(&source, st, sa, DataType::Text);
    let p_tgt = AttributeProfile::of_attribute(&target, tt, ta, DataType::Text);
    let fit = AttributeProfile::fit_against(&p_src, &p_tgt);
    assert!(fit.overall < 0.9, "fit {}", fit.overall);

    let inst = efes_matching::instance_similarity(&source, (st, sa), &target, (tt, ta));
    assert!(inst < 0.9, "instance similarity {inst}");
}
