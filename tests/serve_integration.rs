//! End-to-end tests of `efes-serve` over real sockets: a full estimate
//! round-trip that byte-matches the library path, load shedding under a
//! saturated queue, deadline expiry, graceful drain, and the metrics
//! endpoint.

use efes::{
    EstimateRequest, EstimateResponse, EstimationConfig, Estimator, ExecutionPolicy, Quality,
    ScenarioRegistry,
};
use efes_relational::{
    CorrespondenceBuilder, DataType, DatabaseBuilder, IntegrationScenario, Value,
};
use efes_serve::{MatchResponse, Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A raw one-request HTTP client: returns (status, headers, body).
fn send_raw(addr: SocketAddr, request: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream.write_all(request).expect("write request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response).into_owned();
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {text:?}"));
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {head:?}"));
    (status, head.to_owned(), body.to_owned())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    send_raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nhost: efes\r\n\r\n").as_bytes(),
    )
}

fn post_estimate(addr: SocketAddr, body: &str) -> (u16, String, String) {
    send_raw(
        addr,
        format!(
            "POST /estimate HTTP/1.1\r\nhost: efes\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn post_match(addr: SocketAddr, body: &str) -> (u16, String, String) {
    send_raw(
        addr,
        format!(
            "POST /match HTTP/1.1\r\nhost: efes\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// Poll the in-process metrics until `line` appears or `within` elapses.
fn wait_for_metric(handle: &ServerHandle, line: &str, within: Duration) {
    let start = Instant::now();
    loop {
        if handle.scrape().lines().any(|l| l == line) {
            return;
        }
        assert!(
            start.elapsed() < within,
            "metric line {line:?} did not appear within {within:?}; scrape:\n{}",
            handle.scrape()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A scenario that is deliberately expensive to estimate: enough rows
/// that profiling dominates, so a single worker stays busy long enough
/// for queueing and deadline behaviour to be observable.
fn slow_scenario() -> IntegrationScenario {
    const ROWS: usize = 6000;
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Text(format!("name-{}", i * 7919 % 997)),
                Value::Text(format!("place {} nr {}", i % 97, i)),
                Value::Text(format!("note:{:04x}", i * 31 % 4096)),
            ]
        })
        .collect();
    let source = DatabaseBuilder::new("big_src")
        .table("events", |t| {
            t.attr("id", DataType::Integer)
                .attr("name", DataType::Text)
                .attr("place", DataType::Text)
                .attr("note", DataType::Text)
        })
        .rows("events", rows)
        .build()
        .unwrap();
    let target = DatabaseBuilder::new("big_tgt")
        .table("records", |t| {
            t.attr("nr", DataType::Integer)
                .attr("title", DataType::Text)
                .attr("venue", DataType::Text)
                .attr("remark", DataType::Text)
        })
        .build()
        .unwrap();
    let corrs = CorrespondenceBuilder::new(&source, &target)
        .table("events", "records")
        .unwrap()
        .attr("events", "id", "records", "nr")
        .unwrap()
        .attr("events", "name", "records", "title")
        .unwrap()
        .attr("events", "place", "records", "venue")
        .unwrap()
        .attr("events", "note", "records", "remark")
        .unwrap()
        .finish();
    IntegrationScenario::single_source("slow", source, target, corrs).unwrap()
}

/// One worker, one queue slot, and profile caching effectively disabled
/// so repeated estimates of the slow scenario stay slow.
fn slow_server() -> ServerHandle {
    let mut registry = ScenarioRegistry::new();
    registry.register("slow", "deliberately expensive scenario", slow_scenario);
    Server::start(
        ServerConfig {
            workers: ExecutionPolicy::Threads(1),
            queue_capacity: 1,
            profile_cache_capacity: Some(1),
            ..ServerConfig::default()
        },
        registry,
    )
    .expect("start server")
}

#[test]
fn estimate_round_trip_byte_matches_the_library() {
    let handle = Server::start(
        ServerConfig {
            workers: ExecutionPolicy::Threads(2),
            ..ServerConfig::default()
        },
        efes_scenarios::standard_registry(),
    )
    .expect("start server");

    let (status, _, body) = post_estimate(
        handle.addr(),
        r#"{"scenario":"music-example","include_tasks":true}"#,
    );
    assert_eq!(status, 200, "body: {body}");
    let served: EstimateResponse = serde_json::from_str(&body).expect("parse response");

    // The same request through the library, bypassing the server.
    let mut request = EstimateRequest::new("music-example");
    request.include_tasks = true;
    let scenario = efes_scenarios::standard_registry()
        .get("music-example")
        .unwrap();
    let estimate = Estimator::with_default_modules(EstimationConfig::for_quality(
        Quality::HighQuality,
    ))
    .estimate(&scenario)
    .unwrap();
    let expected = EstimateResponse::from_estimate(&estimate, &request);

    assert_eq!(served, expected);
    // Byte-for-byte: serialising both sides yields identical JSON.
    assert_eq!(
        serde_json::to_string(&served).unwrap(),
        serde_json::to_string(&expected).unwrap()
    );
    assert!(served.total_minutes > 0.0);
    handle.shutdown();
}

#[test]
fn discovery_and_error_paths_answer_without_panicking() {
    let handle = Server::start(ServerConfig::default(), efes_scenarios::standard_registry())
        .expect("start server");
    let addr = handle.addr();

    let (status, _, body) = get(addr, "/healthz");
    assert_eq!((status, body.contains("ok")), (200, true));

    let (status, _, body) = get(addr, "/scenarios");
    assert_eq!(status, 200);
    assert!(body.contains("music-example"), "body: {body}");
    assert!(body.contains("amalgam-s1-s2"), "body: {body}");
    assert!(body.contains("discography-f1-m2"), "body: {body}");

    // Unknown path, wrong method, malformed JSON, unknown scenario,
    // invalid UTF-8, protocol garbage, oversized body.
    assert_eq!(get(addr, "/nope").0, 404);
    assert_eq!(
        send_raw(addr, b"POST /healthz HTTP/1.1\r\n\r\n").0,
        405
    );
    let (status, _, body) = post_estimate(addr, "{not json");
    assert_eq!(status, 400, "body: {body}");
    let (status, _, body) = post_estimate(addr, r#"{"quality":"LowEffort"}"#);
    assert_eq!(status, 400, "body: {body}");
    let (status, _, body) = post_estimate(addr, r#"{"scenario":"no-such-scenario"}"#);
    assert_eq!(status, 404, "body: {body}");
    let mut non_utf8 = b"POST /estimate HTTP/1.1\r\ncontent-length: 3\r\n\r\n".to_vec();
    non_utf8.extend_from_slice(&[0xff, 0xfe, 0x00]);
    assert_eq!(send_raw(addr, &non_utf8).0, 400);
    assert_eq!(send_raw(addr, b"SPDY is not http\r\n\r\n").0, 400);
    let huge = format!(
        "POST /estimate HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
        64 * 1024 * 1024
    );
    assert_eq!(send_raw(addr, huge.as_bytes()).0, 413);

    let metrics = handle.scrape();
    assert!(
        metrics.contains("efes_bad_requests_total 4"),
        "metrics:\n{metrics}"
    );
    assert!(metrics.contains("efes_too_large_total 1"), "metrics:\n{metrics}");
    handle.shutdown();
}

#[test]
fn saturated_queue_sheds_with_429_and_retry_after() {
    let handle = slow_server();
    let addr = handle.addr();
    let body = r#"{"scenario":"slow","deadline_ms":120000}"#;

    // Occupy the single worker…
    let first = std::thread::spawn(move || post_estimate(addr, body));
    wait_for_metric(&handle, "efes_jobs_in_flight 1", Duration::from_secs(30));
    // …fill the single queue slot…
    let second = std::thread::spawn(move || post_estimate(addr, body));
    wait_for_metric(&handle, "efes_queue_depth 1", Duration::from_secs(30));
    // …and the next request must be shed, not queued.
    let (status, head, body_text) = post_estimate(addr, body);
    assert_eq!(status, 429, "body: {body_text}");
    assert!(
        head.to_ascii_lowercase().contains("retry-after: 1"),
        "head: {head}"
    );

    let (status, _, _) = first.join().unwrap();
    assert_eq!(status, 200);
    let (status, _, _) = second.join().unwrap();
    assert_eq!(status, 200);

    let metrics = handle.scrape();
    assert!(metrics.contains("efes_rejected_total 1"), "metrics:\n{metrics}");
    assert!(
        metrics.contains("efes_estimates_ok_total 2"),
        "metrics:\n{metrics}"
    );
    handle.shutdown();
}

#[test]
fn expired_deadlines_answer_503_and_abandon_the_job() {
    let handle = slow_server();
    let addr = handle.addr();

    // Keep the worker busy so the deadlined request can never start.
    let blocker = std::thread::spawn(move || {
        post_estimate(addr, r#"{"scenario":"slow","deadline_ms":120000}"#)
    });
    wait_for_metric(&handle, "efes_jobs_in_flight 1", Duration::from_secs(30));

    let (status, _, body) = post_estimate(addr, r#"{"scenario":"slow","deadline_ms":25}"#);
    assert_eq!(status, 503, "body: {body}");
    assert!(body.contains("deadline"), "body: {body}");

    let (status, _, _) = blocker.join().unwrap();
    assert_eq!(status, 200);
    // Once the worker reaches the abandoned job it skips it and says so.
    wait_for_metric(&handle, "efes_jobs_abandoned_total 1", Duration::from_secs(30));
    wait_for_metric(&handle, "efes_deadline_expired_total 1", Duration::from_secs(5));
    handle.shutdown();
}

#[test]
fn tight_deadline_aborts_a_running_estimate_and_frees_the_worker() {
    // Two synthetic scenarios: a large one whose uncancelled estimate
    // serves as the baseline, and a ~10⁶-row one that only ever runs
    // under a tight deadline — its uncancelled runtime would dwarf the
    // whole test.
    let mut registry = ScenarioRegistry::new();
    registry.register("synth-large", "large synthetic scenario", || {
        efes_synth::generate(&efes_synth::SynthConfig::default().with_rows(20_000)).scenario
    });
    registry.register("synth-xl", "million-row synthetic scenario", || {
        efes_synth::generate(&efes_synth::SynthConfig::default().with_rows(333_334)).scenario
    });
    let handle = Server::start(
        ServerConfig {
            workers: ExecutionPolicy::Threads(1),
            queue_capacity: 1,
            profile_cache_capacity: Some(1),
            ..ServerConfig::default()
        },
        registry,
    )
    .expect("start server");
    let addr = handle.addr();

    // Baseline: the large scenario estimated uncancelled. Seeds the
    // mean request latency that reclaimed worker time is credited
    // against, and bounds the "worker free again" assertion below.
    let baseline_started = Instant::now();
    let (status, _, body) = post_estimate(addr, r#"{"scenario":"synth-large"}"#);
    assert_eq!(status, 200, "body: {body}");
    let baseline = baseline_started.elapsed();

    // The million-row scenario under a 500 ms deadline: the waiter
    // answers 503 at the deadline and the running job aborts at its
    // next checkpoint instead of occupying the worker for the full
    // estimate. (Scenario generation happens on the connection thread
    // before the clock starts, so only estimation is under deadline.)
    let (status, _, body) =
        post_estimate(addr, r#"{"scenario":"synth-xl","deadline_ms":500}"#);
    let aborted_at = Instant::now();
    assert_eq!(status, 503, "body: {body}");

    // The worker must come free well before even the *baseline*
    // uncancelled runtime — of a scenario a seventeenth the size —
    // pinning that the abort was cooperative, not a run-to-completion.
    let free_bound = baseline.max(Duration::from_secs(2));
    wait_for_metric(&handle, "efes_jobs_in_flight 0", free_bound);
    assert!(
        aborted_at.elapsed() < free_bound,
        "worker still busy after {:?} (baseline {:?})",
        aborted_at.elapsed(),
        baseline
    );

    // The abort is attributed to the pipeline stage that observed it…
    let abort_deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let cancelled_line = handle.scrape().lines().any(|l| {
            l.starts_with("efes_cancelled_in_stage_total{stage=")
                && !l.ends_with(" 0")
        });
        if cancelled_line {
            break;
        }
        assert!(
            Instant::now() < abort_deadline,
            "no efes_cancelled_in_stage_total sample; scrape:\n{}",
            handle.scrape()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // …and the time handed back (mean uncancelled latency minus the
    // ~500 ms the run actually held) is credited as reclaimed.
    assert!(
        handle.metrics().reclaimed_micros() > 0,
        "no worker time reclaimed; scrape:\n{}",
        handle.scrape()
    );

    // The server is fully healthy afterwards: the freed worker serves
    // the next estimate normally.
    let (status, _, body) = post_estimate(addr, r#"{"scenario":"synth-large"}"#);
    assert_eq!(status, 200, "body: {body}");
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_estimates() {
    let handle = slow_server();
    let addr = handle.addr();

    let client = std::thread::spawn(move || {
        post_estimate(addr, r#"{"scenario":"slow","deadline_ms":120000}"#)
    });
    wait_for_metric(&handle, "efes_jobs_in_flight 1", Duration::from_secs(30));
    handle.shutdown();

    // The in-flight request still completed successfully.
    let (status, _, body) = client.join().unwrap();
    assert_eq!(status, 200, "body: {body}");
    let parsed: EstimateResponse = serde_json::from_str(&body).expect("parse drained response");
    assert_eq!(parsed.scenario, "slow");

    // And the listener is gone.
    assert!(TcpStream::connect_timeout(&addr, Duration::from_secs(1)).is_err());
}

#[test]
fn match_endpoint_proposes_correspondences_by_name() {
    let handle = Server::start(ServerConfig::default(), efes_scenarios::standard_registry())
        .expect("start server");
    let addr = handle.addr();

    let (status, _, body) = post_match(addr, r#"{"scenario":"music-example"}"#);
    assert_eq!(status, 200, "body: {body}");
    let served: MatchResponse = serde_json::from_str(&body).expect("parse match response");
    assert_eq!(served.scenario, "music-example");
    assert_eq!(served.source, 0);
    assert!(served.pairs_total > 0);
    assert!(!served.matches.is_empty(), "body: {body}");
    for m in &served.matches {
        assert!(m.score > 0.0 && m.score <= 1.0, "score {m:?}");
        assert!(!m.source_attr.is_empty() && !m.target_attr.is_empty());
    }
    // Best-first ordering survives the wire.
    for pair in served.matches.windows(2) {
        assert!(pair[0].score >= pair[1].score, "body: {body}");
    }

    // Error paths: unknown scenario, out-of-range source, bad JSON.
    assert_eq!(post_match(addr, r#"{"scenario":"no-such"}"#).0, 404);
    let (status, _, body) = post_match(addr, r#"{"scenario":"music-example","source":99}"#);
    assert_eq!(status, 404, "body: {body}");
    assert!(body.contains("no index 99"), "body: {body}");
    assert_eq!(post_match(addr, "{nope").0, 400);

    let metrics = handle.scrape();
    assert!(
        metrics.contains("efes_requests_total{endpoint=\"match\"} 4"),
        "metrics:\n{metrics}"
    );
    assert!(metrics.contains("efes_matches_ok_total 1"), "metrics:\n{metrics}");
    assert!(
        metrics.contains("efes_stage_latency_ms_count{stage=\"matching\"} 1"),
        "metrics:\n{metrics}"
    );
    handle.shutdown();
}

#[test]
fn metrics_expose_stage_latencies_and_cache_counters() {
    let handle = Server::start(ServerConfig::default(), efes_scenarios::standard_registry())
        .expect("start server");
    let addr = handle.addr();
    let body = r#"{"scenario":"music-example"}"#;
    assert_eq!(post_estimate(addr, body).0, 200);
    assert_eq!(post_estimate(addr, body).0, 200);

    let (status, _, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("efes_requests_total{endpoint=\"estimate\"} 2"),
        "metrics:\n{metrics}"
    );
    assert!(metrics.contains("efes_estimates_ok_total 2"), "metrics:\n{metrics}");
    for stage in ["mapping", "structure", "values"] {
        assert!(
            metrics.contains(&format!("efes_stage_latency_ms_count{{stage=\"{stage}\"}} 2")),
            "missing stage {stage}; metrics:\n{metrics}"
        );
    }
    assert!(metrics.contains("efes_request_latency_ms_count 2"), "metrics:\n{metrics}");
    assert!(metrics.contains("efes_queue_capacity 64"), "metrics:\n{metrics}");
    assert!(metrics.contains("efes_workers"), "metrics:\n{metrics}");

    // The second estimate of the same scenario was served from the
    // per-scenario profile cache: hits > 0, and entries are resident.
    let cache_line = |name: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no {name} in metrics:\n{metrics}"))
    };
    assert!(cache_line("efes_profile_cache_hits_total ") > 0);
    assert!(cache_line("efes_profile_cache_misses_total ") > 0);
    assert!(cache_line("efes_profile_cache_entries ") > 0);

    // The structure stage runs the CSG counting evaluator; its
    // expression memo counters are exported. Each estimate rebuilds the
    // source conversions, so misses are guaranteed; hits depend on how
    // many repeated (expr, node) evaluations one run performs, so only
    // assert the counter is present (process-global, monotonic).
    assert!(
        cache_line("efes_csg_eval_memo_misses_total ") > 0,
        "metrics:\n{metrics}"
    );
    let _hits = cache_line("efes_csg_eval_memo_hits_total ");
    // csg_planning work is folded into the structure stage histogram:
    // both estimates must have recorded a structure-stage latency above.
    assert!(
        metrics.contains("efes_stage_latency_ms_sum{stage=\"structure\"}"),
        "metrics:\n{metrics}"
    );
    handle.shutdown();
}
