//! End-to-end tests of scenario ingestion over real sockets: uploads
//! estimate byte-identically to the library, identical uploads
//! deduplicate, the memory budget evicts idle uploads (never statics),
//! and `DELETE` answers 200/403/404 as provenance dictates.

use efes::{EstimateRequest, EstimateResponse, EstimationConfig, Estimator, Quality};
use efes_ingest::{approx_scenario_bytes, ScenarioUpload, UploadFormat};
use efes_serve::http::Limits;
use efes_serve::{DeleteResponse, Server, ServerConfig, ServerHandle, UploadResponse};
use efes_synth::{generate, SynthConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A raw one-request HTTP client: returns (status, headers, body).
fn send_raw(addr: SocketAddr, request: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream.write_all(request).expect("write request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response).into_owned();
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {text:?}"));
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {head:?}"));
    (status, head.to_owned(), body.to_owned())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    send_raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nhost: efes\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    send_raw(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nhost: efes\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn delete(addr: SocketAddr, name: &str) -> (u16, String, String) {
    send_raw(
        addr,
        format!("DELETE /scenarios/{name} HTTP/1.1\r\nhost: efes\r\n\r\n").as_bytes(),
    )
}

/// A small synthetic scenario and its upload document under `name`.
fn synth_upload(name: &str, seed: u64, rows: usize) -> (efes_relational::IntegrationScenario, String) {
    let cfg = SynthConfig::default().with_seed(seed).with_rows(rows);
    let mut scenario = generate(&cfg).scenario;
    // The upload's registry name becomes the scenario's own name on
    // ingest; rename the library-side copy to match.
    scenario.name = name.to_owned();
    let mut upload = ScenarioUpload::from_scenario(&scenario, UploadFormat::JsonRows);
    upload.name = name.to_owned();
    let doc = serde_json::to_string(&upload).expect("serialise upload");
    (scenario, doc)
}

fn default_server() -> ServerHandle {
    Server::start(ServerConfig::default(), efes_scenarios::standard_registry())
        .expect("start server")
}

#[test]
fn uploaded_scenarios_estimate_byte_identically_to_the_library() {
    let handle = default_server();
    let addr = handle.addr();
    let (scenario, doc) = synth_upload("up-synth", 41, 80);

    let (status, _, body) = post(addr, "/scenarios", &doc);
    assert_eq!(status, 201, "body: {body}");
    let created: UploadResponse = serde_json::from_str(&body).expect("parse upload response");
    assert_eq!(created.scenario, "up-synth");
    assert_eq!(created.status, "created");
    assert!(created.resident_bytes > 0);
    assert!(created.evicted.is_empty());

    // The listing carries provenance for both kinds of entry.
    let (status, _, listing) = get(addr, "/scenarios");
    assert_eq!(status, 200);
    assert!(
        listing.contains(r#""name":"up-synth""#) && listing.contains(r#""provenance":"uploaded""#),
        "listing: {listing}"
    );
    assert!(listing.contains(r#""provenance":"static""#), "listing: {listing}");
    assert!(listing.contains("music-example"), "listing: {listing}");

    // Estimating the upload over the wire matches the library run on
    // the original scenario byte for byte.
    let (status, _, body) = post(
        addr,
        "/estimate",
        r#"{"scenario":"up-synth","include_tasks":true}"#,
    );
    assert_eq!(status, 200, "body: {body}");
    let served: EstimateResponse = serde_json::from_str(&body).expect("parse estimate");

    let mut request = EstimateRequest::new("up-synth");
    request.include_tasks = true;
    let estimate = Estimator::with_default_modules(EstimationConfig::for_quality(
        Quality::HighQuality,
    ))
    .estimate(&scenario)
    .unwrap();
    let expected = EstimateResponse::from_estimate(&estimate, &request);

    assert_eq!(served, expected);
    assert_eq!(
        serde_json::to_string(&served).unwrap(),
        serde_json::to_string(&expected).unwrap()
    );
    assert!(served.total_minutes > 0.0);

    let metrics = handle.scrape();
    assert!(metrics.contains("efes_ingest_ok_total 1"), "metrics:\n{metrics}");
    assert!(metrics.contains("efes_scenarios_uploaded 1"), "metrics:\n{metrics}");
    assert!(
        metrics.contains(&format!("efes_ingest_resident_bytes {}", created.resident_bytes)),
        "metrics:\n{metrics}"
    );
    handle.shutdown();
}

#[test]
fn identical_uploads_deduplicate_to_one_entry() {
    let handle = default_server();
    let addr = handle.addr();
    let (_, doc_a) = synth_upload("dup-a", 42, 60);
    let (_, doc_b) = synth_upload("dup-b", 42, 60); // same content, new name

    let (status, _, body) = post(addr, "/scenarios", &doc_a);
    assert_eq!(status, 201, "body: {body}");
    let created: UploadResponse = serde_json::from_str(&body).unwrap();

    let (status, _, body) = post(addr, "/scenarios", &doc_b);
    assert_eq!(status, 200, "body: {body}");
    let dedup: UploadResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(dedup.status, "deduplicated");
    // The response redirects the client to the entry that already holds
    // this content — and its profile cache.
    assert_eq!(dedup.scenario, "dup-a");
    assert_eq!(dedup.resident_bytes, created.resident_bytes);

    let (_, _, listing) = get(addr, "/scenarios");
    assert!(listing.contains("dup-a"), "listing: {listing}");
    assert!(!listing.contains("dup-b"), "listing: {listing}");

    let metrics = handle.scrape();
    assert!(metrics.contains("efes_ingest_ok_total 1"), "metrics:\n{metrics}");
    assert!(
        metrics.contains("efes_ingest_deduplicated_total 1"),
        "metrics:\n{metrics}"
    );
    assert!(metrics.contains("efes_scenarios_uploaded 1"), "metrics:\n{metrics}");
    handle.shutdown();
}

/// A deterministic single-source scenario whose `tracks` table holds
/// `n` formulaic rows: the `n = k` instance is an exact row-prefix of
/// any `n > k` instance, which is what the registry recognises as an
/// in-place extension.
fn delta_scenario(name: &str, n: usize) -> efes_relational::IntegrationScenario {
    use efes_relational::{CorrespondenceBuilder, DataType, DatabaseBuilder, Value};
    let rows = (0..n)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                if i % 7 == 3 {
                    Value::Null
                } else {
                    Value::Text(format!("track {} take {i}", i % 12))
                },
                Value::Float(i as f64 * 0.25 + 1.0),
                Value::Int((i % 5) as i64 * 10),
            ]
        })
        .collect();
    let source = DatabaseBuilder::new("src")
        .table("tracks", |t| {
            t.attr("id", DataType::Integer)
                .attr("title", DataType::Text)
                .attr("price", DataType::Float)
                .attr("plays", DataType::Integer)
                .primary_key(&["id"])
        })
        .rows("tracks", rows)
        .build()
        .expect("build source");
    let target = DatabaseBuilder::new("tgt")
        .table("songs", |t| {
            t.attr("nr", DataType::Integer).attr("name", DataType::Text)
        })
        .build()
        .expect("build target");
    let correspondences = CorrespondenceBuilder::new(&source, &target)
        .table("tracks", "songs")
        .expect("table correspondence")
        .attr("tracks", "id", "songs", "nr")
        .expect("id correspondence")
        .attr("tracks", "title", "songs", "name")
        .expect("title correspondence")
        .finish();
    efes_relational::IntegrationScenario::single_source(name, source, target, correspondences)
        .expect("assemble scenario")
}

/// Serialise a scenario as an upload document under its own name.
fn upload_doc(scenario: &efes_relational::IntegrationScenario) -> String {
    let mut upload = ScenarioUpload::from_scenario(scenario, UploadFormat::JsonRows);
    upload.name = scenario.name.clone();
    serde_json::to_string(&upload).expect("serialise upload")
}

/// Read one counter out of a metrics scrape.
fn counter(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.trim().parse().ok()))
        .unwrap_or_else(|| panic!("{name} missing from scrape:\n{metrics}"))
}

#[test]
fn appending_rows_extends_in_place_and_profiles_only_the_delta() {
    let handle = default_server();
    let addr = handle.addr();
    // v1 is an exact row-prefix of v2; the 20 extra rows are the delta.
    let scenario_v2 = delta_scenario("delta-synth", 80);
    let doc_v1 = upload_doc(&delta_scenario("delta-synth", 60));
    let doc_v2 = upload_doc(&scenario_v2);
    let dropped = 20usize;

    let (status, _, body) = post(addr, "/scenarios", &doc_v1);
    assert_eq!(status, 201, "body: {body}");

    // Estimate v1 so its profile cache (and retained partials) exist.
    let (status, _, body) = post(addr, "/estimate", r#"{"scenario":"delta-synth"}"#);
    assert_eq!(status, 200, "body: {body}");

    // Re-upload under the same name with the rows appended back: the
    // registry recognises the extension and keeps the entry in place.
    let (status, _, body) = post(addr, "/scenarios", &doc_v2);
    assert_eq!(status, 200, "body: {body}");
    let extended: UploadResponse = serde_json::from_str(&body).expect("parse upload response");
    assert_eq!(extended.scenario, "delta-synth");
    assert_eq!(extended.status, "extended");
    assert!(extended.evicted.is_empty());

    // The extension re-used the retained partials: the delta counters
    // fired, and only the appended rows were accumulated.
    let metrics = handle.scrape();
    assert_eq!(counter(&metrics, "efes_ingest_extended_total"), 1, "metrics:\n{metrics}");
    let deltas = counter(&metrics, "efes_profile_delta_total");
    let delta_rows = counter(&metrics, "efes_profile_delta_rows_total");
    assert!(deltas >= 1, "no delta appends fired:\n{metrics}");
    assert!(delta_rows >= dropped as u64, "delta rows {delta_rows} < appended {dropped}");

    // The estimate served off the delta-patched cache is byte-identical
    // to a cold library run over the full v2 scenario.
    let (status, _, body) = post(
        addr,
        "/estimate",
        r#"{"scenario":"delta-synth","include_tasks":true}"#,
    );
    assert_eq!(status, 200, "body: {body}");
    let served: EstimateResponse = serde_json::from_str(&body).expect("parse estimate");
    let mut request = EstimateRequest::new("delta-synth");
    request.include_tasks = true;
    let estimate = Estimator::with_default_modules(EstimationConfig::for_quality(
        Quality::HighQuality,
    ))
    .estimate(&scenario_v2)
    .unwrap();
    let expected = EstimateResponse::from_estimate(&estimate, &request);
    assert_eq!(served, expected);
    assert_eq!(
        serde_json::to_string(&served).unwrap(),
        serde_json::to_string(&expected).unwrap()
    );

    // Shrinking a scenario is not an extension: same name, fewer rows
    // is a conflict, and the resident entry is untouched.
    let (status, _, body) = post(addr, "/scenarios", &doc_v1);
    assert_eq!(status, 409, "body: {body}");
    handle.shutdown();
}

#[test]
fn budget_eviction_is_lru_and_never_touches_statics() {
    // Three distinct scenarios of similar size; a budget that holds two.
    let (sc_a, doc_a) = synth_upload("up-a", 1, 50);
    let (sc_b, doc_b) = synth_upload("up-b", 2, 50);
    let (sc_c, doc_c) = synth_upload("up-c", 3, 50);
    let sizes = [
        approx_scenario_bytes(&sc_a),
        approx_scenario_bytes(&sc_b),
        approx_scenario_bytes(&sc_c),
    ];
    let budget = sizes.iter().sum::<usize>() - sizes.iter().min().unwrap() / 2;

    let statics = efes_scenarios::standard_registry();
    let static_names: Vec<String> =
        statics.infos().into_iter().map(|i| i.name).collect();
    let handle = Server::start(
        ServerConfig {
            ingest_budget: Some(budget),
            ..ServerConfig::default()
        },
        statics,
    )
    .expect("start server");
    let addr = handle.addr();

    assert_eq!(post(addr, "/scenarios", &doc_a).0, 201);
    assert_eq!(post(addr, "/scenarios", &doc_b).0, 201);
    // Touch `up-a` so `up-b` becomes the least recently used upload.
    let (status, _, body) = post(addr, "/estimate", r#"{"scenario":"up-a"}"#);
    assert_eq!(status, 200, "body: {body}");

    let (status, _, body) = post(addr, "/scenarios", &doc_c);
    assert_eq!(status, 201, "body: {body}");
    let created: UploadResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(created.evicted, vec!["up-b".to_owned()]);

    let (_, _, listing) = get(addr, "/scenarios");
    assert!(listing.contains("up-a"), "listing: {listing}");
    assert!(listing.contains("up-c"), "listing: {listing}");
    assert!(!listing.contains("up-b"), "listing: {listing}");
    // Every compiled-in scenario survived the squeeze.
    for name in &static_names {
        assert!(listing.contains(name.as_str()), "static {name} missing: {listing}");
    }
    let (status, _, body) = post(addr, "/estimate", r#"{"scenario":"up-b"}"#);
    assert_eq!(status, 404, "body: {body}");

    let metrics = handle.scrape();
    assert!(metrics.contains("efes_ingest_evicted_total 1"), "metrics:\n{metrics}");
    assert!(metrics.contains("efes_scenarios_uploaded 2"), "metrics:\n{metrics}");
    handle.shutdown();
}

#[test]
fn delete_answers_by_provenance_and_limits_reject_oversized_uploads() {
    let (_, doc) = synth_upload("del-me", 9, 40);
    let handle = Server::start(
        ServerConfig {
            limits: Limits {
                max_upload_body: doc.len() + 512,
                ..Limits::default()
            },
            ..ServerConfig::default()
        },
        efes_scenarios::standard_registry(),
    )
    .expect("start server");
    let addr = handle.addr();

    let (status, _, body) = post(addr, "/scenarios", &doc);
    assert_eq!(status, 201, "body: {body}");
    let created: UploadResponse = serde_json::from_str(&body).unwrap();

    // Delete it: the bytes come back, and the name stops resolving.
    let (status, _, body) = delete(addr, "del-me");
    assert_eq!(status, 200, "body: {body}");
    let gone: DeleteResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(gone.scenario, "del-me");
    assert_eq!(gone.freed_bytes, created.resident_bytes);
    assert_eq!(post(addr, "/estimate", r#"{"scenario":"del-me"}"#).0, 404);

    // Gone is gone; statics are untouchable; other verbs bounce.
    assert_eq!(delete(addr, "del-me").0, 404);
    assert_eq!(delete(addr, "music-example").0, 403);
    assert_eq!(get(addr, "/scenarios/whatever").0, 405);

    // A body over the upload cap answers 413 before parsing starts.
    let huge = format!(
        "POST /scenarios HTTP/1.1\r\nhost: efes\r\ncontent-length: {}\r\n\r\n",
        doc.len() + 4096
    );
    assert_eq!(send_raw(addr, huge.as_bytes()).0, 413);
    // Malformed documents are a client error, counted as rejected.
    assert_eq!(post(addr, "/scenarios", "{not json").0, 400);

    let metrics = handle.scrape();
    assert!(metrics.contains("efes_ingest_deleted_total 1"), "metrics:\n{metrics}");
    assert!(metrics.contains("efes_ingest_rejected_total 1"), "metrics:\n{metrics}");
    assert!(metrics.contains("efes_too_large_total 1"), "metrics:\n{metrics}");
    assert!(metrics.contains("efes_scenarios_uploaded 0"), "metrics:\n{metrics}");
    handle.shutdown();
}
