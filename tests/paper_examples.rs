//! Integration tests pinning the paper's worked-example numbers:
//! Tables 2, 3, 5, 6 and 8 regenerate with the published values at the
//! paper's instance sizes.

use efes_bench::{table1, table2, table3, table5, table6, table8, table9};
use efes_scenarios::MusicExampleConfig;

fn cfg() -> MusicExampleConfig {
    MusicExampleConfig::paper()
}

#[test]
fn table1_totals_slightly_more_than_8_hours() {
    let t = table1();
    assert!(t.contains("Requirements and Mapping"), "{t}");
    assert!(t.contains("2.00"));
    assert!(t.contains("Total: 8.05 hours per source attribute"));
}

#[test]
fn table2_reports_records_connection_exactly() {
    let t = table2(&cfg());
    // "records | 3 | 2 | yes"
    let records_row = t
        .lines()
        .find(|l| l.starts_with("records"))
        .expect("records row");
    assert!(records_row.contains('3'), "{records_row}");
    assert!(records_row.contains('2'));
    assert!(records_row.contains("yes"));
    let tracks_row = t.lines().find(|l| l.starts_with("tracks")).expect("tracks row");
    assert!(tracks_row.contains("no"));
}

#[test]
fn table3_reports_503_and_102_violations() {
    let t = table3(&cfg());
    assert!(
        t.contains("κ(records→records.artist) = 1") && t.contains("503"),
        "{t}"
    );
    assert!(
        t.contains("κ(records.artist→records) = 1..*") && t.contains("102"),
        "{t}"
    );
}

#[test]
fn table5_reproduces_the_224_minute_plan() {
    let t = table5(&cfg());
    assert!(t.contains("Merge values (artist)"), "{t}");
    assert!(t.contains("503"));
    assert!(t.contains("Add tuples (records)"));
    assert!(t.contains("102"));
    assert!(t.contains("Add missing values (title)"));
    assert!(t.contains("204 mins"));
    assert!(t.contains("Total  224 mins"));
}

#[test]
fn table6_reports_paper_value_counts() {
    let t = table6(&cfg());
    assert!(t.contains("274523 source values"), "{t}");
    assert!(t.contains("260923 distinct source values"));
    assert!(t.contains("Different value representations"));
    assert!(t.contains("length") && t.contains("duration"));
}

#[test]
fn table8_adapted_configuration_totals_15_minutes() {
    let t = table8(&cfg());
    assert!(t.contains("Convert values"), "{t}");
    assert!(t.contains("274523 values, 260923 distinct values"));
    assert!(t.contains("Total (adapted)  15 mins"));
}

#[test]
fn table9_lists_the_published_functions() {
    let t = table9();
    for needle in [
        "3 · #repetitions",                     // Aggregate values
        "(if #dist-vals < 120) 30, (else) 0.25 · #dist-vals", // Convert values
        "0.5 · #dist-vals",                     // Generalize values
        "2 · #values",                          // Add values
        "3 · #FKs + 3 · #PKs + 1 · #atts + 3 · #tables", // Write mapping
    ] {
        assert!(t.contains(needle), "missing `{needle}` in:\n{t}");
    }
}

#[test]
fn example_3_8_total_is_25_minutes() {
    // The Example 3.8 numbers live in the effort model; recompute here
    // through the public API: records (3 tables, 2 attrs, 1 PK) +
    // tracks (3 tables, 2 attrs) at 3/1/3 rates, FKs excluded.
    use efes::prelude::*;
    use efes::settings::Quality;
    let model = EffortModel::table9();
    let settings = Default::default();
    let mk = |tables, attributes, pks| {
        Task::new(
            TaskType::WriteMapping,
            Quality::HighQuality,
            TaskParams {
                tables,
                attributes,
                pks,
                ..TaskParams::default()
            },
            "x",
            "mapping",
        )
    };
    let total = model.minutes_for(&mk(3, 2, 1), &settings) + model.minutes_for(&mk(3, 2, 0), &settings);
    assert_eq!(total, 25.0);
}

mod artifact_smoke {
    //! The figure regenerators produce well-formed output at test scale.
    use efes_bench::{figure2, figure4, figure5, table4, table7};
    use efes_scenarios::MusicExampleConfig;

    fn small() -> MusicExampleConfig {
        MusicExampleConfig::scaled_down()
    }

    #[test]
    fn figure2_describes_the_scenario() {
        let f = figure2(&small());
        assert!(f.contains("records(id integer [PK,NN]"), "{f}");
        assert!(f.contains("albums("));
        assert!(f.contains("Example instances from the source table songs"));
    }

    #[test]
    fn figure4_emits_valid_dot() {
        let f = figure4(&small());
        assert_eq!(f.matches("digraph").count(), 2, "source and target CSGs");
        assert!(f.contains("shape=box") && f.contains("shape=ellipse"));
        assert!(f.contains("style=dashed"), "FK equality edges");
        // Cardinality labels in the paper's notation.
        assert!(f.contains("label=\"1 / 1..*\"") || f.contains("label=\"1 / 1\""), "{f}");
        assert_eq!(f.matches('{').count(), f.matches('}').count());
    }

    #[test]
    fn figure5_walks_through_clean_states() {
        let f = figure5(&small());
        assert!(f.contains("(a) Initial state:"));
        assert!(f.contains("⊄"), "initial state must show violations");
        assert!(f.contains("Merge values"));
        assert!(f.contains("Add tuples"));
        // The final panel must have no violation marker after its header.
        let final_panel = f.rsplit("State after").next().unwrap();
        assert!(
            !final_panel.contains('⊄'),
            "the last state must be clean:\n{final_panel}"
        );
    }

    #[test]
    fn task_catalogue_tables_are_complete() {
        let t4 = table4();
        for needle in ["Reject tuples", "Aggregate tuples", "Merge values", "Add tuples", "Add referenced values"] {
            assert!(t4.contains(needle), "{needle} missing:\n{t4}");
        }
        let t7 = table7();
        for needle in ["Add values", "Convert values", "Generalize values", "Refine values", "Drop values"] {
            assert!(t7.contains(needle), "{needle} missing:\n{t7}");
        }
    }
}

mod section_6_1 {
    //! §6.1's task adaptation, re-enacted: *"our prototype proposed to
    //! provide missing FreeDB IDs for music CDs to obtain a high-quality
    //! result; this ID is calculated from the CD structure with a special
    //! algorithm. Since there was no way for us to obtain this value, we
    //! exchanged this proposal with Reject tuples to delete source CDs
    //! without such a disc ID instead."*

    use efes::framework::EstimationModule;
    use efes::modules::StructureModule;
    use efes::prelude::*;
    use efes::settings::Quality;
    use efes_csg::planner::{PlannerOptions, StructureTaskKind};
    use efes_csg::violations::ConflictKind;
    use efes_relational::{CorrespondenceBuilder, DataType, DatabaseBuilder, IntegrationScenario, Value};

    fn scenario() -> IntegrationScenario {
        let mut source = DatabaseBuilder::new("freedb")
            .table("cds", |t| {
                t.attr("disc_id", DataType::Text).attr("title", DataType::Text)
            })
            .build()
            .unwrap();
        for i in 0..12 {
            let disc_id: Value = if i < 4 {
                Value::Null // no way to compute these
            } else {
                format!("{:08x}", 0x7a0c_1d00u32 + i).into()
            };
            source
                .insert_by_name("cds", vec![disc_id, format!("CD number {i}").into()])
                .unwrap();
        }
        let target = DatabaseBuilder::new("tgt")
            .table("discs", |t| {
                t.attr("disc_id", DataType::Text)
                    .attr("title", DataType::Text)
                    .not_null("disc_id")
            })
            .build()
            .unwrap();
        let corrs = CorrespondenceBuilder::new(&source, &target)
            .table("cds", "discs")
            .unwrap()
            .attr("cds", "disc_id", "discs", "disc_id")
            .unwrap()
            .attr("cds", "title", "discs", "title")
            .unwrap()
            .finish();
        IntegrationScenario::single_source("freedb-ids", source, target, corrs).unwrap()
    }

    #[test]
    fn default_proposal_is_add_missing_values() {
        let s = scenario();
        let module = StructureModule::default();
        let report = module.assess(&s).unwrap();
        let tasks = module
            .plan(&s, &report, &EstimationConfig::for_quality(Quality::HighQuality))
            .unwrap();
        let add = tasks
            .iter()
            .find(|t| t.task_type == TaskType::AddValues)
            .expect("prototype proposes providing the missing ids");
        assert_eq!(add.params.repetitions, 4);
    }

    #[test]
    fn adapted_proposal_rejects_tuples_instead() {
        let s = scenario();
        let module = StructureModule {
            planner_options: PlannerOptions {
                overrides: vec![(ConflictKind::NotNullViolated, StructureTaskKind::RejectTuples)],
                ..PlannerOptions::default()
            },
        };
        let report = module.assess(&s).unwrap();
        let cfg = EstimationConfig::for_quality(Quality::HighQuality);
        let tasks = module.plan(&s, &report, &cfg).unwrap();
        assert!(tasks.iter().all(|t| t.task_type != TaskType::AddValues));
        let reject = tasks
            .iter()
            .find(|t| t.task_type == TaskType::RejectTuples)
            .expect("the adapted plan rejects the id-less CDs");
        assert_eq!(reject.params.repetitions, 4);
        // The adaptation is also cheaper: one DELETE (5 min) instead of
        // researching four ids (8 min).
        let minutes = |tasks: &[Task]| -> f64 {
            tasks
                .iter()
                .map(|t| cfg.effort_model.minutes_for(t, &cfg.settings))
                .sum()
        };
        let default_tasks = StructureModule::default()
            .plan(&s, &StructureModule::default().assess(&s).unwrap(), &cfg)
            .unwrap();
        assert!(minutes(&tasks) < minutes(&default_tasks));
    }
}
