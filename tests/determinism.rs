//! Determinism of the parallel pipeline: running the estimator under any
//! thread budget must produce byte-identical estimates to a forced
//! sequential run. Parallelism and the shared profile cache may only
//! change *how fast* the answer arrives, never the answer.

use efes::prelude::*;
use efes_scenarios::amalgam::scenarios::{amalgam_scenarios, AmalgamConfig};
use efes_scenarios::{music_example_scenario, MusicExampleConfig};

fn estimate_under(
    scenario: &efes_relational::IntegrationScenario,
    policy: ExecutionPolicy,
) -> EffortEstimate {
    let cfg = EstimationConfig::default().with_execution(policy);
    Estimator::with_default_modules(cfg)
        .estimate(scenario)
        .unwrap()
}

#[test]
fn music_scenario_parallel_equals_sequential() {
    let (s, _) = music_example_scenario(&MusicExampleConfig::scaled_down());
    let sequential = estimate_under(&s, ExecutionPolicy::Sequential);
    for threads in [2, 4, 8] {
        let parallel = estimate_under(&s, ExecutionPolicy::Threads(threads));
        assert_eq!(sequential, parallel, "threads={threads}");
        // Equality must hold down to the serialized bytes, not just the
        // (timings-excluding) PartialEq.
        assert_eq!(
            serde_json::to_string(&sequential).unwrap(),
            serde_json::to_string(&parallel).unwrap(),
            "threads={threads}"
        );
    }
}

#[test]
fn bibliographic_scenarios_parallel_equals_sequential() {
    for (s, _) in amalgam_scenarios(&AmalgamConfig::small()) {
        let sequential = estimate_under(&s, ExecutionPolicy::Sequential);
        let parallel = estimate_under(&s, ExecutionPolicy::Threads(4));
        assert_eq!(sequential, parallel, "scenario {}", s.name);
        assert_eq!(
            serde_json::to_string(&sequential).unwrap(),
            serde_json::to_string(&parallel).unwrap(),
            "scenario {}",
            s.name
        );
    }
}

#[test]
fn synthetic_scenarios_parallel_equals_sequential() {
    // Differential check over generated scenarios: clean, default-dirty,
    // and multi-source shapes, all through the full estimator under both
    // execution policies, compared down to the serialized bytes.
    let configs = [
        efes_synth::SynthConfig::clean().with_rows(150),
        efes_synth::SynthConfig::default().with_rows(150),
        efes_synth::SynthConfig::default()
            .with_seed(0xFEED)
            .with_rows(80)
            .with_sources(3),
    ];
    for cfg in configs {
        let out = efes_synth::generate(&cfg);
        let sequential = estimate_under(&out.scenario, ExecutionPolicy::Sequential);
        for threads in [2, 8] {
            let parallel = estimate_under(&out.scenario, ExecutionPolicy::Threads(threads));
            assert_eq!(sequential, parallel, "{} threads={threads}", out.scenario.name);
            assert_eq!(
                serde_json::to_string(&sequential).unwrap(),
                serde_json::to_string(&parallel).unwrap(),
                "{} threads={threads}",
                out.scenario.name
            );
        }
    }
}

#[test]
fn assess_reports_are_mode_independent() {
    let (s, _) = music_example_scenario(&MusicExampleConfig::scaled_down());
    let seq = Estimator::with_default_modules(
        EstimationConfig::default().with_execution(ExecutionPolicy::Sequential),
    )
    .assess(&s)
    .unwrap();
    let par = Estimator::with_default_modules(
        EstimationConfig::default().with_execution(ExecutionPolicy::Threads(4)),
    )
    .assess(&s)
    .unwrap();
    assert_eq!(seq, par);
}

#[test]
fn timings_are_recorded_but_not_part_of_identity() {
    let (s, _) = music_example_scenario(&MusicExampleConfig::scaled_down());
    let est = estimate_under(&s, ExecutionPolicy::Threads(4));
    // One stage per default module, in registration order.
    let stages: Vec<&str> = est.timings.stages.iter().map(|t| t.stage.as_str()).collect();
    assert_eq!(stages, ["mapping", "structure", "values"]);
    assert!(est.timings.total_millis >= 0.0);
    assert_eq!(est.timings.threads, 4);
    // The values module profiles through the shared cache.
    assert!(est.timings.cache_misses > 0);
    // The timing table renders one row per stage plus a total.
    let table = est.timings.table();
    assert_eq!(table.lines().count(), est.timings.stages.len() + 1);
    assert!(table.contains("total"));

    // Identity excludes timings: a clone with wiped timings is equal and
    // serialises identically (timings are #[serde(skip)]).
    let mut wiped = est.clone();
    wiped.timings = PipelineTimings::default();
    assert_eq!(est, wiped);
    assert_eq!(
        serde_json::to_string(&est).unwrap(),
        serde_json::to_string(&wiped).unwrap()
    );
    let json = serde_json::to_string(&est).unwrap();
    assert!(!json.contains("total_millis"));
}

#[test]
fn env_override_forces_sequential() {
    // EFES_THREADS=1 collapses the FromEnv policy to Sequential. Set the
    // variable for this whole test; the assertion reads the resolved
    // mode, not the environment, so parallel tests cannot race with it.
    std::env::set_var(efes::THREADS_ENV_VAR, "1");
    let resolved = ExecutionPolicy::FromEnv.mode();
    std::env::remove_var(efes::THREADS_ENV_VAR);
    assert_eq!(resolved, efes::ExecutionMode::Sequential);
}
