//! End-to-end integration tests: the full two-phase pipeline on the
//! running example, configuration round-trips, and the execution-settings
//! levers of §3.4.

use efes::prelude::*;
use efes::settings::{ExecutionSettings, Quality, ToolSupport};
use efes::task::TaskCategory;
use efes_scenarios::{music_example_scenario, MusicExampleConfig};

fn scenario() -> efes_relational::IntegrationScenario {
    music_example_scenario(&MusicExampleConfig::scaled_down()).0
}

#[test]
fn high_quality_estimates_exceed_low_effort() {
    let s = scenario();
    let low = Estimator::with_default_modules(EstimationConfig::for_quality(Quality::LowEffort))
        .estimate(&s)
        .unwrap();
    let high =
        Estimator::with_default_modules(EstimationConfig::for_quality(Quality::HighQuality))
            .estimate(&s)
            .unwrap();
    assert!(high.total_minutes() > low.total_minutes());
    // Low effort ignores the uncritical conversion entirely (Table 7).
    assert_eq!(low.category_minutes(TaskCategory::CleaningValues), 0.0);
    assert!(high.category_minutes(TaskCategory::CleaningValues) > 0.0);
}

#[test]
fn estimates_are_deterministic() {
    let s = scenario();
    let estimator = Estimator::with_default_modules(EstimationConfig::default());
    let a = estimator.estimate(&s).unwrap();
    let b = estimator.estimate(&s).unwrap();
    assert_eq!(a, b);
}

#[test]
fn mapping_tool_reduces_mapping_effort_only() {
    let s = scenario();
    let manual = Estimator::with_default_modules(EstimationConfig::default())
        .estimate(&s)
        .unwrap();
    let mut cfg = EstimationConfig::default();
    cfg.settings.tools = ToolSupport::MappingTool;
    cfg.effort_model = EffortModel::for_settings(&cfg.settings);
    let tooled = Estimator::with_default_modules(cfg).estimate(&s).unwrap();
    assert!(tooled.mapping_minutes() < manual.mapping_minutes());
    assert_eq!(tooled.cleaning_minutes(), manual.cleaning_minutes());
}

#[test]
fn criticality_scales_every_task() {
    let s = scenario();
    let base = Estimator::with_default_modules(EstimationConfig::default())
        .estimate(&s)
        .unwrap();
    let cfg = EstimationConfig {
        settings: ExecutionSettings {
            criticality_factor: 3.0,
            ..ExecutionSettings::default()
        },
        ..EstimationConfig::default()
    };
    let critical = Estimator::with_default_modules(cfg).estimate(&s).unwrap();
    assert!((critical.total_minutes() - 3.0 * base.total_minutes()).abs() < 1e-6);
}

#[test]
fn config_round_trips_through_json() {
    let mut cfg = EstimationConfig::for_quality(Quality::LowEffort);
    cfg.effort_model
        .set(TaskType::ConvertValues, EffortFunction::Constant(15.0));
    cfg.settings.expertise_factor = 1.4;
    let json = cfg.to_json();
    let back = EstimationConfig::from_json(&json).unwrap();
    // An estimator built from the round-tripped config produces the same
    // numbers.
    let s = scenario();
    let a = Estimator::with_default_modules(cfg).estimate(&s).unwrap();
    let b = Estimator::with_default_modules(back).estimate(&s).unwrap();
    assert_eq!(a, b);
}

#[test]
fn reports_expose_granular_findings() {
    // The paper's granularity requirement: the user learns *which*
    // attributes cause problems, not just a number.
    let s = scenario();
    let estimator = Estimator::with_default_modules(EstimationConfig::default());
    let estimate = estimator.estimate(&s).unwrap();
    let all_findings: Vec<_> = estimate
        .reports
        .iter()
        .flat_map(|r| r.findings.iter())
        .collect();
    assert!(all_findings
        .iter()
        .any(|f| f.location.contains("records.artist")));
    assert!(all_findings
        .iter()
        .any(|f| f.location.contains("length") && f.location.contains("duration")));
    // Every finding carries at least one metric.
    assert!(all_findings.iter().all(|f| !f.metrics.is_empty()));
}

#[test]
fn full_scale_paper_configuration_completes_quickly() {
    // §6.2: "EFES relies on simple SQL queries only for the analysis of
    // the data and completes within seconds for databases with thousands
    // of tuples." Our substrate analyses the 290k-row paper-scale
    // instance within seconds too.
    let start = std::time::Instant::now();
    let (s, _) = music_example_scenario(&MusicExampleConfig::paper());
    let estimator = Estimator::with_default_modules(EstimationConfig::default());
    let estimate = estimator.estimate(&s).unwrap();
    assert!(estimate.total_minutes() > 0.0);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "took {:?}",
        start.elapsed()
    );
}

#[test]
fn estimates_and_reports_serialize_to_json() {
    // Complexity reports and estimates are part of the public surface
    // (the paper's granularity requirement feeds downstream tools), so
    // they must round-trip through serde.
    let s = scenario();
    let estimator = Estimator::with_default_modules(EstimationConfig::default());
    let estimate = estimator.estimate(&s).unwrap();
    let json = serde_json::to_string(&estimate).unwrap();
    let back: EffortEstimate = serde_json::from_str(&json).unwrap();
    assert_eq!(back, estimate);
    assert!(json.contains("value-heterogeneity"));
    assert!(json.contains("structural-conflict"));
}
