//! Chaos suite: drives a live server under deterministic fault
//! injection (`EFES_FAULTS`) and asserts the blast radius of every
//! fault mode stays inside its isolation boundary — a panicking job
//! answers `500` and the worker survives, a spurious cancel answers
//! `503` and the next request recovers byte-identically, a delay only
//! slows the answer, an ingest allocation cap rejects one upload, and
//! shutdown drains cleanly while faults keep firing.
//!
//! The whole suite is ONE test function: the fault spec is process
//! environment, so sub-steps must run sequentially. The schedule seed
//! comes from `EFES_CHAOS_SEED` (CI runs a small matrix of seeds);
//! every assertion below is seed-independent because each step pins
//! `rate=1` with a single mode, except the drain step, which only
//! asserts that responses stay in the allowed status set.

use efes_ingest::{ScenarioUpload, UploadFormat};
use efes_serve::{Server, ServerConfig};
use efes_synth::{generate, SynthConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A raw one-request HTTP client: returns (status, body).
fn send_raw(addr: SocketAddr, request: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    // No request may ever hang: a stuck server fails the suite here.
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(request).expect("write request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response).into_owned();
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {text:?}"));
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {head:?}"));
    (status, body.to_owned())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    send_raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nhost: efes\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    send_raw(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nhost: efes\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// The schedule seed under test; CI sweeps a matrix of these.
fn chaos_seed() -> u64 {
    std::env::var("EFES_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Sets `EFES_FAULTS` for one sub-step; clears it on drop so a failing
/// assertion cannot leak faults into the next step.
struct FaultGuard;

fn with_faults(spec: &str) -> FaultGuard {
    std::env::set_var(efes_exec::fault::FAULTS_ENV_VAR, spec);
    FaultGuard
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        std::env::remove_var(efes_exec::fault::FAULTS_ENV_VAR);
    }
}

fn delete(addr: SocketAddr, name: &str) -> (u16, String) {
    send_raw(
        addr,
        format!("DELETE /scenarios/{name} HTTP/1.1\r\nhost: efes\r\n\r\n").as_bytes(),
    )
}

/// Forces `EFES_PROFILE_SHARD=force` for one sub-step; clears it on
/// drop. The policy is re-read per profile call, so this flips the live
/// server.
struct ShardGuard;

fn with_forced_sharding() -> ShardGuard {
    std::env::set_var(efes_profiling::shard::PROFILE_SHARD_ENV_VAR, "force");
    ShardGuard
}

impl Drop for ShardGuard {
    fn drop(&mut self) {
        std::env::remove_var(efes_profiling::shard::PROFILE_SHARD_ENV_VAR);
    }
}

/// A small synthetic scenario serialised as an upload document.
fn upload_doc(name: &str) -> String {
    let cfg = SynthConfig::default().with_seed(7).with_rows(40);
    let scenario = generate(&cfg).scenario;
    let mut upload = ScenarioUpload::from_scenario(&scenario, UploadFormat::JsonRows);
    upload.name = name.to_owned();
    serde_json::to_string(&upload).expect("serialise upload")
}

#[test]
fn injected_faults_stay_inside_their_isolation_boundaries() {
    let seed = chaos_seed();
    let handle = Server::start(ServerConfig::default(), efes_scenarios::standard_registry())
        .expect("start server");
    let addr = handle.addr();
    let estimate_body = r#"{"scenario":"music-example","include_tasks":true}"#;

    // Baseline, no faults: the byte-exact answer every recovery below
    // must reproduce.
    let (status, baseline) = post(addr, "/estimate", estimate_body);
    assert_eq!(status, 200, "baseline body: {baseline}");

    // --- Panic in the estimation job: 500 now, clean recovery next. ---
    {
        let _g = with_faults(&format!(
            "seed={seed},rate=1,site=serve.estimate.job,mode=panic"
        ));
        let (status, body) = post(addr, "/estimate", estimate_body);
        assert_eq!(status, 500, "body: {body}");
        assert!(body.contains("panicked"), "body: {body}");
    }
    let (status, body) = post(addr, "/estimate", estimate_body);
    assert_eq!(status, 200, "post-panic body: {body}");
    assert_eq!(body, baseline, "recovery after panic must be byte-identical");

    // --- Spurious cancel: the run aborts cooperatively with 503. ---
    {
        let _g = with_faults(&format!(
            "seed={seed},rate=1,site=serve.estimate.job,mode=cancel"
        ));
        let (status, body) = post(addr, "/estimate", estimate_body);
        assert_eq!(status, 503, "body: {body}");
        assert!(body.contains("cancelled in stage"), "body: {body}");
    }
    let (status, body) = post(addr, "/estimate", estimate_body);
    assert_eq!(status, 200, "post-cancel body: {body}");
    assert_eq!(body, baseline, "recovery after cancel must be byte-identical");

    // --- Delay: slower, but still the exact same answer. ---
    {
        let _g = with_faults(&format!(
            "seed={seed},rate=1,site=serve.estimate.job,mode=delay"
        ));
        let (status, body) = post(addr, "/estimate", estimate_body);
        assert_eq!(status, 200, "body: {body}");
        assert_eq!(body, baseline, "a delay must not change the estimate");
    }

    // --- Ingest allocation cap: one upload bounces, the retry lands. ---
    let doc = upload_doc("chaos-upload");
    {
        let _g = with_faults(&format!("seed={seed},rate=1,site=ingest.upload,mode=alloc"));
        let (status, body) = post(addr, "/scenarios", &doc);
        assert_eq!(status, 413, "body: {body}");
        assert!(body.contains("injected fault"), "body: {body}");
    }
    let (status, body) = post(addr, "/scenarios", &doc);
    assert_eq!(status, 201, "post-alloc-cap body: {body}");

    // --- Panic on the connection thread (ingest site): the unwind
    // boundary answers 500 and the server stays up. ---
    {
        let _g = with_faults(&format!("seed={seed},rate=1,site=ingest.upload,mode=panic"));
        let (status, body) = post(addr, "/scenarios", &doc);
        assert_eq!(status, 500, "body: {body}");
        assert!(body.contains("internal panic"), "body: {body}");
    }
    assert_eq!(get(addr, "/healthz").0, 200);

    // --- Faults inside the sharded profile merge: neither a panic nor
    // a cancel mid-merge may hang the job or poison the scenario's
    // profile-cache slot. `force` routes even this tiny scenario
    // through the split/merge path so `profiling.shard.merge` is
    // reachable; each fault needs a cold cache, so the scenario is
    // dropped and re-uploaded before the next mode. ---
    {
        let _shard = with_forced_sharding();
        let (status, shard_baseline) = post(
            addr,
            "/estimate",
            r#"{"scenario":"chaos-upload","include_tasks":true}"#,
        );
        assert_eq!(status, 200, "forced-shard baseline: {shard_baseline}");

        assert_eq!(delete(addr, "chaos-upload").0, 200);
        assert_eq!(post(addr, "/scenarios", &doc).0, 201);
        {
            let _g = with_faults(&format!(
                "seed={seed},rate=1,site=profiling.shard.merge,mode=panic"
            ));
            let (status, body) = post(addr, "/estimate", r#"{"scenario":"chaos-upload"}"#);
            assert_eq!(status, 500, "body: {body}");
            assert!(body.contains("panicked"), "body: {body}");
        }
        {
            let _g = with_faults(&format!(
                "seed={seed},rate=1,site=profiling.shard.merge,mode=cancel"
            ));
            let (status, body) = post(addr, "/estimate", r#"{"scenario":"chaos-upload"}"#);
            assert_eq!(status, 503, "body: {body}");
            assert!(body.contains("cancelled in stage"), "body: {body}");
        }
        // Faults cleared, cache slot survived both: the same entry now
        // fills cleanly and answers byte-identically.
        let (status, body) = post(
            addr,
            "/estimate",
            r#"{"scenario":"chaos-upload","include_tasks":true}"#,
        );
        assert_eq!(status, 200, "post-shard-fault body: {body}");
        assert_eq!(
            body, shard_baseline,
            "recovery after shard-merge faults must be byte-identical"
        );
    }

    // Every injected fault is visible in the metrics, per site and mode.
    let metrics = handle.scrape();
    for line in [
        "efes_fault_injected_total{site=\"serve.estimate.job\",mode=\"panic\"} 1",
        "efes_fault_injected_total{site=\"serve.estimate.job\",mode=\"cancel\"} 1",
        "efes_fault_injected_total{site=\"serve.estimate.job\",mode=\"delay\"} 1",
        "efes_fault_injected_total{site=\"ingest.upload\",mode=\"alloc\"} 1",
        "efes_fault_injected_total{site=\"ingest.upload\",mode=\"panic\"} 1",
        "efes_fault_injected_total{site=\"profiling.shard.merge\",mode=\"panic\"} 1",
        "efes_fault_injected_total{site=\"profiling.shard.merge\",mode=\"cancel\"} 1",
        "efes_panics_recovered_total 3",
    ] {
        assert!(metrics.contains(line), "missing {line:?} in:\n{metrics}");
    }
    // The forced-shard estimates above actually split: the process-wide
    // sharding tallies are visible and non-zero.
    assert!(
        metrics
            .lines()
            .any(|l| l.starts_with("efes_profile_shard_columns_total") && !l.ends_with(" 0")),
        "no sharded columns counted in:\n{metrics}"
    );
    assert!(
        metrics
            .lines()
            .any(|l| l.starts_with("efes_cancelled_in_stage_total{stage=") && !l.ends_with(" 0")),
        "no cancelled-in-stage sample in:\n{metrics}"
    );

    // --- Drain under a mixed fault storm: the seed decides which mode
    // each request draws; whatever it draws, the answer is one of the
    // three legal statuses, never a hang. ---
    {
        let _g = with_faults(&format!(
            "seed={seed},rate=0.6,site=serve.estimate.job,mode=panic|delay|cancel"
        ));
        for i in 0..6 {
            let (status, body) = post(addr, "/estimate", estimate_body);
            assert!(
                matches!(status, 200 | 500 | 503),
                "request {i} under fault storm answered {status}: {body}"
            );
        }
    }

    // Faults cleared: the very next request is exact again, and
    // shutdown drains without hanging.
    let (status, body) = post(addr, "/estimate", estimate_body);
    assert_eq!(status, 200, "post-storm body: {body}");
    assert_eq!(body, baseline, "recovery after the storm must be byte-identical");
    handle.shutdown();
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_secs(1)).is_err(),
        "listener must be gone after shutdown"
    );
}
