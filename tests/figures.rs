//! Integration tests asserting the *shape* of the paper's evaluation
//! figures (6 and 7): who wins, by roughly what factor, and the
//! qualitative behaviours §6.2 calls out.

use efes::task::TaskCategory;
use efes_scenarios::amalgam::AmalgamConfig;
use efes_scenarios::discography::DiscographyConfig;
use efes_scenarios::evaluation::full_evaluation;

fn evaluation() -> (
    efes_scenarios::DomainEvaluation,
    efes_scenarios::DomainEvaluation,
    f64,
    f64,
) {
    full_evaluation(&AmalgamConfig::default(), &DiscographyConfig::default())
}

#[test]
fn efes_beats_counting_in_both_domains_and_overall() {
    let (fig6, fig7, overall_efes, overall_counting) = evaluation();
    assert!(fig6.rmse_efes < fig6.rmse_counting);
    assert!(fig7.rmse_efes < fig7.rmse_counting);
    assert!(overall_efes < overall_counting);
}

#[test]
fn bibliographic_gap_exceeds_music_gap() {
    // Paper: factor ≈ 4 in the bibliographic domain (0.47 vs 1.90),
    // smaller in the music domain (1.05 vs 1.64).
    let (fig6, fig7, _, _) = evaluation();
    let bib_ratio = fig6.rmse_counting / fig6.rmse_efes.max(1e-9);
    let music_ratio = fig7.rmse_counting / fig7.rmse_efes.max(1e-9);
    assert!(
        bib_ratio > music_ratio,
        "bibliographic ratio {bib_ratio:.2} must exceed music ratio {music_ratio:.2}"
    );
    assert!(bib_ratio >= 2.0, "{bib_ratio}");
}

#[test]
fn music_domain_is_mapping_dominated() {
    // Paper §6.2: "in this domain, there are fewer problems at the data
    // level and the effort is dominated by the mapping".
    let (_, fig7, _, _) = evaluation();
    let mapping: f64 = fig7
        .results
        .iter()
        .map(|r| r.measured.get(&TaskCategory::Mapping).copied().unwrap_or(0.0))
        .sum();
    let total: f64 = fig7.results.iter().map(|r| r.measured_total()).sum();
    assert!(
        mapping / total > 0.5,
        "mapping share {:.2} should dominate",
        mapping / total
    );
}

#[test]
fn bibliographic_cleaning_is_the_main_driver_at_high_quality() {
    let (fig6, _, _, _) = evaluation();
    let dirty_high = fig6
        .results
        .iter()
        .find(|r| r.scenario == "s1-s2" && matches!(r.quality, efes::Quality::HighQuality));
    let r = dirty_high.expect("s1-s2 high quality present");
    let cleaning: f64 = r
        .measured
        .iter()
        .filter(|(c, _)| **c != TaskCategory::Mapping)
        .map(|(_, v)| v)
        .sum();
    assert!(
        cleaning > r.measured.get(&TaskCategory::Mapping).copied().unwrap_or(0.0),
        "cleaning must dominate the flattening scenario"
    );
}

#[test]
fn identical_schema_scenarios_have_zero_efes_cleaning() {
    let (fig6, fig7, _, _) = evaluation();
    for (eval, name) in [(&fig6, "s4-s4"), (&fig7, "d1-d2")] {
        for r in eval.results.iter().filter(|r| r.scenario == name) {
            let efes_cleaning: f64 = r
                .efes
                .iter()
                .filter(|(c, _)| **c != TaskCategory::Mapping)
                .map(|(_, v)| v)
                .sum();
            assert_eq!(efes_cleaning, 0.0);
            assert!(r.counting_cleaning > 0.0);
        }
    }
}

#[test]
fn efes_tracks_the_quality_split_counting_cannot() {
    // For every scenario, EFES's high-quality estimate is ≥ its
    // low-effort estimate, mirroring the measured effort; counting
    // produces the identical number for both.
    let (fig6, fig7, _, _) = evaluation();
    for eval in [&fig6, &fig7] {
        for pair in eval.results.chunks(2) {
            let (low, high) = (&pair[0], &pair[1]);
            assert_eq!(low.scenario, high.scenario);
            assert!(low.efes_total() <= high.efes_total() + 1e-9);
            assert!(low.measured_total() <= high.measured_total() + 1e-9);
            assert_eq!(low.counting_total(), high.counting_total());
        }
    }
}

#[test]
fn rendered_figures_contain_all_bar_groups() {
    let (fig6, fig7, summary) = efes_bench::figures6_and_7(
        &AmalgamConfig::default(),
        &DiscographyConfig::default(),
    );
    for name in ["s1-s2", "s1-s3", "s3-s4", "s4-s4"] {
        assert!(fig6.contains(name), "{name} missing from figure 6");
    }
    for name in ["f1-m2", "m1-d2", "m1-f2", "d1-d2"] {
        assert!(fig7.contains(name), "{name} missing from figure 7");
    }
    assert!(fig6.contains("rmse: EFES"));
    assert!(summary.contains("Overall"));
}
