//! End-to-end fuzzing: randomly generated scenarios never panic the
//! pipeline, estimates are finite and non-negative, and identity
//! scenarios always come out clean.

use efes::prelude::*;
use efes::settings::Quality;
use efes_relational::{
    Correspondence, CorrespondenceSet, DataType, Database, DatabaseBuilder, IntegrationScenario,
    SourceId, Value,
};
use proptest::prelude::*;

/// A random value of a given type (with occasional NULLs).
fn arb_value(dt: DataType) -> BoxedStrategy<Value> {
    match dt {
        DataType::Integer => prop_oneof![
            9 => (-10_000i64..10_000).prop_map(Value::Int),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Float => prop_oneof![
            9 => (-1.0e4..1.0e4).prop_map(Value::Float),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Text => prop_oneof![
            9 => "[a-zA-Z0-9 :\\.-]{0,18}".prop_map(Value::Text),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Boolean => prop_oneof![
            9 => any::<bool>().prop_map(Value::Bool),
            1 => Just(Value::Null),
        ]
        .boxed(),
    }
}

fn arb_datatype() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Integer),
        Just(DataType::Float),
        Just(DataType::Text),
        Just(DataType::Boolean),
    ]
}

/// A random single-table database: 1–4 columns, 0–25 rows, random
/// not-null/unique constraints on column 0.
fn arb_database(name: &'static str) -> impl Strategy<Value = Database> {
    (
        proptest::collection::vec(arb_datatype(), 1..=4),
        0usize..25,
        any::<bool>(),
        any::<u64>(),
    )
        .prop_flat_map(move |(types, rows, constrain, seed)| {
            let row_strategy: Vec<_> = types.iter().map(|dt| arb_value(*dt)).collect();
            proptest::collection::vec(row_strategy, rows).prop_map(move |data| {
                let types = types.clone();
                let mut b = DatabaseBuilder::new(name).table("t", |mut t| {
                    for (i, dt) in types.iter().enumerate() {
                        t = t.attr(&format!("c{i}"), *dt);
                    }
                    if constrain && seed % 3 == 0 {
                        t = t.not_null("c0");
                    }
                    t
                });
                // Filter rows that would violate a NOT NULL on c0.
                let rows: Vec<Vec<Value>> = data
                    .into_iter()
                    .filter(|r| !(constrain && seed % 3 == 0 && r[0].is_null()))
                    .collect();
                b = b.rows("t", rows);
                b.build().expect("generated database is well-formed")
            })
        })
}

fn identity_correspondences(source: &Database, target: &Database) -> CorrespondenceSet {
    let mut cs = CorrespondenceSet::new();
    let st = source.schema.table_id("t").unwrap();
    let tt = target.schema.table_id("t").unwrap();
    cs.push(Correspondence::Table {
        source: SourceId(0),
        source_table: st,
        target_table: tt,
    });
    let shared = source
        .schema
        .table(st)
        .arity()
        .min(target.schema.table(tt).arity());
    for i in 0..shared {
        cs.push(Correspondence::Attribute {
            source: SourceId(0),
            source_attr: efes_relational::AttrRef {
                table: st,
                attr: efes_relational::AttrId(i),
            },
            target_attr: efes_relational::AttrRef {
                table: tt,
                attr: efes_relational::AttrId(i),
            },
        });
    }
    cs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any random source/target pair with positional correspondences
    /// estimates without panicking, at both qualities, with finite
    /// non-negative minutes.
    #[test]
    fn random_scenarios_never_panic(
        source in arb_database("src"),
        target in arb_database("tgt"),
    ) {
        let corrs = identity_correspondences(&source, &target);
        let scenario =
            IntegrationScenario::single_source("fuzz", source, target, corrs).unwrap();
        for quality in [Quality::LowEffort, Quality::HighQuality] {
            let estimator =
                Estimator::with_default_modules(EstimationConfig::for_quality(quality));
            let estimate = estimator.estimate(&scenario).expect("pipeline must not fail");
            prop_assert!(estimate.total_minutes().is_finite());
            prop_assert!(estimate.total_minutes() >= 0.0);
            for t in &estimate.tasks {
                prop_assert!(t.minutes.is_finite() && t.minutes >= 0.0);
            }
        }
    }

    /// Integrating a database into an exact copy of itself is always
    /// clean: mapping effort only.
    #[test]
    fn identity_scenarios_are_clean(source in arb_database("src")) {
        let mut target = source.clone();
        target.schema.name = "tgt".into();
        let corrs = identity_correspondences(&source, &target);
        let scenario =
            IntegrationScenario::single_source("identity", source, target, corrs).unwrap();
        let estimator = Estimator::with_default_modules(EstimationConfig::for_quality(
            Quality::HighQuality,
        ));
        let estimate = estimator.estimate(&scenario).expect("pipeline");
        prop_assert_eq!(
            estimate.cleaning_minutes(),
            0.0,
            "identity copy must need no cleaning: {:#?}",
            estimate.tasks
        );
    }

    /// Value-cleaning effort is monotone in quality under the Table 9
    /// functions (ignore ≤ drop ≤ convert). Structural effort is *not* —
    /// with a single missing value, repairing it (2·1 = 2 min) undercuts
    /// the constant 5-minute reject — so totals are only asserted when a
    /// plan actually differs in the monotone category.
    #[test]
    fn value_cleaning_is_monotone_in_quality(
        source in arb_database("src"),
        target in arb_database("tgt"),
    ) {
        use efes::task::TaskCategory;
        let corrs = identity_correspondences(&source, &target);
        let scenario =
            IntegrationScenario::single_source("mono", source, target, corrs).unwrap();
        let low = Estimator::with_default_modules(EstimationConfig::for_quality(Quality::LowEffort))
            .estimate(&scenario)
            .expect("low");
        let high = Estimator::with_default_modules(EstimationConfig::for_quality(Quality::HighQuality))
            .estimate(&scenario)
            .expect("high");
        prop_assert!(
            low.category_minutes(TaskCategory::CleaningValues)
                <= high.category_minutes(TaskCategory::CleaningValues) + 1e-9
        );
        // Mapping is quality-independent.
        prop_assert!((low.mapping_minutes() - high.mapping_minutes()).abs() < 1e-9);
    }
}
