//! Multi-source scenarios: the paper's framework takes *"a set of source
//! databases"* (§3.1) — these tests integrate two sources into one target
//! and check that findings, tasks and efforts attribute per source.

use efes::framework::EstimationModule;
use efes::modules::{MappingModule, StructureModule, ValueModule};
use efes::prelude::*;
use efes::settings::Quality;
use efes_relational::{
    Correspondence, CorrespondenceSet, DataType, Database, DatabaseBuilder, IntegrationScenario,
    SourceId,
};

/// Source 0: m:ss duration strings (compatible with the target).
fn source_a() -> Database {
    DatabaseBuilder::new("src-a")
        .table("songs", |t| {
            t.attr("title", DataType::Text).attr("length", DataType::Text)
        })
        .rows(
            "songs",
            (0..25)
                .map(|i| {
                    vec![
                        format!("Alpha Song {i} of the Western Sky").into(),
                        format!("{}:{:02}", 3 + i % 4, (i * 7) % 60).into(),
                    ]
                })
                .collect(),
        )
        .build()
        .unwrap()
}

/// Source 1: millisecond integers (heterogeneous).
fn source_b() -> Database {
    DatabaseBuilder::new("src-b")
        .table("tunes", |t| {
            t.attr("name", DataType::Text).attr("millis", DataType::Integer)
        })
        .rows(
            "tunes",
            (0..25)
                .map(|i| {
                    vec![
                        format!("Beta Melody {i} from the Northern Coast").into(),
                        (180_000 + i * 4321).into(),
                    ]
                })
                .collect(),
        )
        .build()
        .unwrap()
}

fn target() -> Database {
    DatabaseBuilder::new("tgt")
        .table("tracks", |t| {
            t.attr("title", DataType::Text).attr("duration", DataType::Text)
        })
        .rows(
            "tracks",
            (0..20)
                .map(|i| {
                    vec![
                        format!("Gamma Tune {i} under the Southern Stars").into(),
                        format!("{}:{:02}", 2 + i % 5, (i * 11) % 60).into(),
                    ]
                })
                .collect(),
        )
        .build()
        .unwrap()
}

fn scenario() -> IntegrationScenario {
    let a = source_a();
    let b = source_b();
    let t = target();
    let mut corrs = CorrespondenceSet::new();
    // Source 0 correspondences.
    let (at, _) = a.schema.resolve("songs", "title").unwrap();
    let tt = t.schema.table_id("tracks").unwrap();
    corrs.push(Correspondence::Table {
        source: SourceId(0),
        source_table: at,
        target_table: tt,
    });
    for (sa, ta) in [("title", "title"), ("length", "duration")] {
        let (st, said) = a.schema.resolve("songs", sa).unwrap();
        let (ttab, taid) = t.schema.resolve("tracks", ta).unwrap();
        corrs.push(Correspondence::Attribute {
            source: SourceId(0),
            source_attr: efes_relational::AttrRef { table: st, attr: said },
            target_attr: efes_relational::AttrRef { table: ttab, attr: taid },
        });
    }
    // Source 1 correspondences.
    let (bt, _) = b.schema.resolve("tunes", "name").unwrap();
    corrs.push(Correspondence::Table {
        source: SourceId(1),
        source_table: bt,
        target_table: tt,
    });
    for (sa, ta) in [("name", "title"), ("millis", "duration")] {
        let (st, said) = b.schema.resolve("tunes", sa).unwrap();
        let (ttab, taid) = t.schema.resolve("tracks", ta).unwrap();
        corrs.push(Correspondence::Attribute {
            source: SourceId(1),
            source_attr: efes_relational::AttrRef { table: st, attr: said },
            target_attr: efes_relational::AttrRef { table: ttab, attr: taid },
        });
    }
    IntegrationScenario::multi_source("two-sources", vec![a, b], t, corrs).unwrap()
}

#[test]
fn mapping_module_creates_one_connection_per_source() {
    let s = scenario();
    let conns = MappingModule::connections(&s);
    assert_eq!(conns.len(), 2);
    assert_eq!(conns[0].source, SourceId(0));
    assert_eq!(conns[1].source, SourceId(1));
}

#[test]
fn value_module_flags_only_the_heterogeneous_source() {
    let s = scenario();
    let report = ValueModule::default().assess(&s).unwrap();
    // Source B's millisecond lengths clash with m:ss durations …
    assert!(
        report.findings.iter().any(|f| f.location.contains("millis")),
        "{report:?}"
    );
    // … while source A's m:ss lengths fit.
    assert!(
        report.findings.iter().all(|f| !f.location.contains("songs.length")),
        "{report:?}"
    );
}

#[test]
fn structure_module_handles_both_sources_independently() {
    let s = scenario();
    let report = StructureModule::default().assess(&s).unwrap();
    // Neither source violates the (constraint-free) target structure.
    assert!(report.findings.is_empty(), "{report:?}");
}

#[test]
fn estimate_covers_both_sources() {
    let s = scenario();
    let estimator =
        Estimator::with_default_modules(EstimationConfig::for_quality(Quality::HighQuality));
    let estimate = estimator.estimate(&s).unwrap();
    let mapping_tasks: Vec<&str> = estimate
        .tasks
        .iter()
        .filter(|t| t.task.task_type == TaskType::WriteMapping)
        .map(|t| t.task.location.as_str())
        .collect();
    assert_eq!(mapping_tasks.len(), 2);
    assert!(mapping_tasks.iter().any(|l| l.contains("src-a")));
    assert!(mapping_tasks.iter().any(|l| l.contains("src-b")));
    // Exactly one conversion task: the millisecond source.
    let conversions = estimate
        .tasks
        .iter()
        .filter(|t| t.task.task_type == TaskType::ConvertValues)
        .count();
    assert_eq!(conversions, 1);
}
